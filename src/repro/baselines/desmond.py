"""Desmond-style MD communication on the commodity cluster (Table 3).

The paper compares Anton against "the hardware/software configuration
that has produced the next fastest reported MD simulations: a high-end
512-node Xeon/InfiniBand cluster running the Desmond MD software".
This module reproduces that column of Table 3 with a schedule-level
model of Desmond's communication [12, 15] on the
:class:`~repro.baselines.cluster.ClusterNetwork`:

* **staged neighbour exchange** for positions and forces: three
  dimension-ordered stages of two messages each, with forwarding, so a
  node reaches all 26 neighbours with 6 messages (Fig. 8a's commodity
  pattern).  Message sizes follow the midpoint-method import geometry
  (slabs of half-cutoff thickness around the home box);
* **distributed FFT** for the long-range electrostatics: transpose
  stages that become all-to-all-like within large node groups at this
  level of strong scaling (2 grid points per node), making the FFT the
  most expensive communication step, as in the paper;
* **thermostat** via two recursive-doubling all-reduces (kinetic
  energy, then the velocity-scale broadcast folded into the second),
  matching the measured 35.5 µs per 512-node IB all-reduce (§IV.B.4);
* **compute phases** from an effective per-pair arithmetic rate
  calibrated to [15] (this is an aggregate rate: it folds pairlist
  maintenance, bonded terms, constraints, and integration into a
  per-pair figure, which is why it is much larger than a raw
  kernel-FLOP estimate).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

from repro.baselines.cluster import ClusterNetwork
from repro.baselines.mpi import MpiContext
from repro.constants import DDR2_INFINIBAND, DHFR_ATOMS, ClusterParams
from repro.engine.simulator import Simulator

#: Effective aggregate arithmetic cost per range-limited pair on one
#: cluster node (see module docstring; calibrated to [15]).
XEON_EFFECTIVE_NS_PER_PAIR = 12.3

#: Effective per-grid-point cost of the node-local FFT butterflies.
XEON_NS_PER_GRID_POINT = 940.0

#: Charge spreading + force interpolation arithmetic per long-range
#: step (aggregate per node, calibrated to [15]).
SPREAD_INTERP_COMPUTE_NS = 40_000.0

#: Thermostat-side arithmetic + load imbalance per invocation.
THERMOSTAT_COMPUTE_NS = 20_000.0

#: Bytes per atom in a position/force message (3 doubles + index/pad).
ATOM_RECORD_BYTES = 32

#: Sender-side pack / receiver-side unpack cost per atom record — the
#: local data-copy overhead commodity clusters pay to keep the message
#: count low (Fig. 8b); Anton eliminates it with direct remote writes.
PACK_NS_PER_ATOM = 25.0


@dataclass
class DesmondWorkload:
    """Geometry of the benchmark system on the cluster.

    Defaults describe DHFR (Table 3 caption): 23,558 atoms, ~62 Å box,
    512 nodes, 32³ long-range grid, long-range every other step.
    """

    num_nodes: int = 512
    atoms: int = DHFR_ATOMS
    box_edge_a: float = 62.2
    cutoff_a: float = 13.0
    grid_points: int = 32  # per dimension
    fft_group_size: int = 32
    long_range_interval: int = 2

    @property
    def node_grid(self) -> int:
        g = round(self.num_nodes ** (1.0 / 3.0))
        if g ** 3 != self.num_nodes:
            raise ValueError(f"num_nodes must be a cube, got {self.num_nodes}")
        return g

    @property
    def node_box_edge_a(self) -> float:
        return self.box_edge_a / self.node_grid

    @property
    def density(self) -> float:
        """Atoms per cubic ångström."""
        return self.atoms / self.box_edge_a ** 3

    @property
    def atoms_per_node(self) -> float:
        return self.atoms / self.num_nodes

    def stage_import_atoms(self) -> list[float]:
        """Atoms carried per staged-exchange stage (both directions).

        Midpoint method: import slabs of thickness ``cutoff / 2``
        around the home box; staged forwarding makes successive slabs
        wider (Plimpton-style east-west, north-south, up-down).
        """
        a = self.node_box_edge_a
        r = self.cutoff_a / 2.0
        s1 = 2 * r * a * a                       # two X slabs
        s2 = 2 * r * (a + 2 * r) * a             # two Y slabs incl. forwarded corners
        s3 = 2 * r * (a + 2 * r) * (a + 2 * r)   # two Z slabs incl. all corners
        return [v * self.density for v in (s1, s2, s3)]

    @property
    def import_atoms(self) -> float:
        return sum(self.stage_import_atoms())

    @property
    def pairs_per_node(self) -> float:
        """Range-limited pairs evaluated per node per step."""
        shell = (4.0 / 3.0) * math.pi * self.cutoff_a ** 3
        neighbors = self.density * shell
        return self.atoms * neighbors / 2.0 / self.num_nodes

    @property
    def grid_points_per_node(self) -> float:
        return self.grid_points ** 3 / self.num_nodes


@dataclass
class DesmondStepTiming:
    """One Table 3 row for the Desmond column."""

    name: str
    communication_ns: float
    total_ns: float

    @property
    def communication_us(self) -> float:
        return self.communication_ns / 1000.0

    @property
    def total_us(self) -> float:
        return self.total_ns / 1000.0

    @property
    def compute_ns(self) -> float:
        return self.total_ns - self.communication_ns


class DesmondModel:
    """Schedule-level Desmond timing model on the cluster network."""

    def __init__(
        self,
        workload: Optional[DesmondWorkload] = None,
        params: ClusterParams = DDR2_INFINIBAND,
    ) -> None:
        self.workload = workload or DesmondWorkload()
        self.params = params

    # -- communication phases (measured on a fresh DES each time) -----------
    def _staged_exchange_ns(self, record_bytes: int = ATOM_RECORD_BYTES) -> float:
        """One staged 6-message neighbour exchange (positions *or* forces).

        Simulated on a representative 3-stage pipeline: a node sends two
        messages per stage and cannot start stage *k+1* until its stage-
        *k* partners' data arrived (forwarding dependency).
        """
        w = self.workload
        sim = Simulator()
        # A 1-D ring of nodes suffices: stages are sequential and each
        # stage's exchange is with fixed partners; use 8 nodes so both
        # directions have distinct partners.
        net = ClusterNetwork(sim, 8, self.params)
        mpi = MpiContext(net)
        stage_atoms = w.stage_import_atoms()
        start = sim.now
        done: dict[int, float] = {}

        def node_proc(rank: int):
            node = net.node(rank)
            for stage, atoms in enumerate(stage_atoms):
                nbytes = int(atoms / 2 * record_bytes)  # per direction
                tag = f"st{stage}"
                # Pack both directions' buffers (local copy, Fig. 8b).
                yield from node.cpu.use(atoms * PACK_NS_PER_ATOM)
                for direction in (1, -1):
                    partner = (rank + direction) % 8
                    yield from net.send(rank, partner, nbytes, tag)
                yield net.recv(rank, tag, 2)
                # Unpack received slabs before the next stage can forward.
                yield from node.cpu.use(atoms * PACK_NS_PER_ATOM)
            done[rank] = sim.now

        procs = [sim.process(node_proc(r)) for r in range(8)]
        sim.run(until=sim.all_of(procs))
        return max(done.values()) - start

    def _fft_convolution_ns(self) -> float:
        """Forward + inverse distributed FFT communication.

        Four transpose stages; at 2 grid points per node each stage is
        an all-to-all within ``fft_group_size``-node groups, entirely
        dominated by per-message overhead.
        """
        w = self.workload
        sim = Simulator()
        g = w.fft_group_size
        net = ClusterNetwork(sim, g, self.params)
        bytes_per_msg = max(
            16, int(w.grid_points_per_node * 16 / g)
        )  # complex doubles, scattered
        start = sim.now
        done: dict[int, float] = {}

        def node_proc(rank: int):
            for stage in range(4):
                tag = f"fft{stage}"
                for peer in range(g):
                    if peer != rank:
                        yield from net.send(rank, peer, bytes_per_msg, tag)
                yield net.recv(rank, tag, g - 1)
                # Local 1-D FFT work between stages is part of compute.
            done[rank] = sim.now

        procs = [sim.process(node_proc(r)) for r in range(g)]
        sim.run(until=sim.all_of(procs))
        return max(done.values()) - start

    def _thermostat_ns(self) -> float:
        """Kinetic-energy all-reduce + scale distribution (two reduces)."""
        sim = Simulator()
        net = ClusterNetwork(sim, self.workload.num_nodes, self.params)
        mpi = MpiContext(net)
        t1 = mpi.allreduce_ns(nbytes=32)
        t2 = mpi.allreduce_ns(nbytes=32)
        return t1 + t2

    # -- compute phases -------------------------------------------------------
    def _range_limited_compute_ns(self) -> float:
        return self.workload.pairs_per_node * XEON_EFFECTIVE_NS_PER_PAIR

    def _long_range_compute_ns(self) -> float:
        return self.workload.grid_points_per_node * XEON_NS_PER_GRID_POINT

    # -- Table 3 rows ------------------------------------------------------------
    def range_limited_step(self) -> DesmondStepTiming:
        """A time step with range-limited interactions only."""
        comm = 2 * self._staged_exchange_ns()  # positions out, forces back
        total = comm + self._range_limited_compute_ns()
        return DesmondStepTiming("range_limited", comm, total)

    def long_range_step(self) -> DesmondStepTiming:
        """A step that also evaluates long-range forces + thermostat."""
        rl = self.range_limited_step()
        fft = self._fft_convolution_ns()
        thermo = self._thermostat_ns()
        comm = rl.communication_ns + fft + thermo
        total = (
            rl.total_ns
            + fft
            + self._long_range_compute_ns()
            + SPREAD_INTERP_COMPUTE_NS
            + thermo
            + THERMOSTAT_COMPUTE_NS
        )
        return DesmondStepTiming("long_range", comm, total)

    def fft_convolution(self) -> DesmondStepTiming:
        fft = self._fft_convolution_ns()
        return DesmondStepTiming(
            "fft_convolution", fft, fft + self._long_range_compute_ns()
        )

    def thermostat(self) -> DesmondStepTiming:
        t = self._thermostat_ns()
        return DesmondStepTiming("thermostat", t, t + THERMOSTAT_COMPUTE_NS)

    def average_step(self) -> DesmondStepTiming:
        """Average over the long-range interval (every other step here)."""
        rl = self.range_limited_step()
        lr = self.long_range_step()
        k = self.workload.long_range_interval
        comm = (rl.communication_ns * (k - 1) + lr.communication_ns) / k
        total = (rl.total_ns * (k - 1) + lr.total_ns) / k
        return DesmondStepTiming("average", comm, total)

    def table3(self) -> dict[str, DesmondStepTiming]:
        """All five Desmond rows of Table 3."""
        return {
            "average": self.average_step(),
            "range_limited": self.range_limited_step(),
            "long_range": self.long_range_step(),
            "fft_convolution": self.fft_convolution(),
            "thermostat": self.thermostat(),
        }
