"""Message-granularity experiments (Fig. 7, §III.D).

Fig. 7 measures the total time to transfer 2 KB between two nodes as
the transfer is divided into 1–64 messages, on Anton (1 hop and
4 hops) and on a DDR2 InfiniBand cluster.  §III.D additionally reports
that 28-byte messages reach 50% of Anton's maximum data bandwidth.

Note on "1 message" for Anton: packets carry at most 256 bytes of
payload, so an n-message transfer is sent as n logical messages each
split into ⌈(2048/n)/256⌉ packets — exactly what Anton software would
do.  The InfiniBand side has no such limit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.asic.node import build_machine
from repro.baselines.cluster import ClusterNetwork
from repro.baselines.mpi import MpiContext
from repro.constants import MAX_PAYLOAD_BYTES, TORUS_LINK_EFFECTIVE_GBPS
from repro.engine.simulator import Simulator


def anton_transfer_ns(
    total_bytes: int,
    num_messages: int,
    hops: int = 1,
    shape: tuple[int, int, int] = (8, 8, 8),
) -> float:
    """Time to move ``total_bytes`` as ``num_messages`` messages on Anton.

    Measured from the first send initiation until the receiver's
    synchronization counter poll succeeds for the final packet.
    """
    if num_messages < 1:
        raise ValueError("num_messages must be >= 1")
    if not 1 <= hops <= shape[0] // 2:
        raise ValueError(f"hops must fit in the X dimension of {shape}")
    sim = Simulator()
    machine = build_machine(sim, *shape)
    src = machine.node((0, 0, 0)).slice(0)
    dst_coord = (hops, 0, 0)
    dst = machine.node(dst_coord).slice(0)

    # Message sizes (near-equal), each further split into packets.
    base, rem = divmod(total_bytes, num_messages)
    sizes = [base + (1 if i < rem else 0) for i in range(num_messages)]
    packets = []
    for size in sizes:
        while size > MAX_PAYLOAD_BYTES:
            packets.append(MAX_PAYLOAD_BYTES)
            size -= MAX_PAYLOAD_BYTES
        packets.append(size)
    dst.memory.allocate("xfer", len(packets))
    times = {}

    def sender():
        for i, size in enumerate(packets):
            yield from src.send_write(
                dst_coord, "slice0", counter_id="xfer", address=("xfer", i),
                payload_bytes=size,
            )

    def receiver():
        times["done"] = yield from dst.poll("xfer", len(packets))

    start = sim.now
    p1 = sim.process(sender())
    p2 = sim.process(receiver())
    sim.run(until=sim.all_of([p1, p2]))
    return times["done"] - start


def infiniband_transfer_ns(total_bytes: int, num_messages: int) -> float:
    """The same experiment on the DDR2 InfiniBand model."""
    sim = Simulator()
    net = ClusterNetwork(sim, 2)
    return MpiContext(net).transfer_ns(total_bytes, num_messages)


@dataclass
class TransferPoint:
    """One x-position of Fig. 7."""

    num_messages: int
    anton_1hop_ns: float
    anton_4hop_ns: float
    infiniband_ns: float


def transfer_split_series(
    total_bytes: int = 2048,
    message_counts: tuple[int, ...] = (1, 2, 4, 8, 16, 24, 32, 48, 64),
) -> list[TransferPoint]:
    """Regenerate both panels of Fig. 7 (normalize for panel b)."""
    out = []
    for n in message_counts:
        out.append(
            TransferPoint(
                num_messages=n,
                anton_1hop_ns=anton_transfer_ns(total_bytes, n, hops=1),
                anton_4hop_ns=anton_transfer_ns(total_bytes, n, hops=4),
                infiniband_ns=infiniband_transfer_ns(total_bytes, n),
            )
        )
    return out


def bandwidth_efficiency(payload_bytes: int) -> float:
    """Fraction of the maximum data bandwidth achieved by a stream of
    ``payload_bytes`` packets (§III.D's 50%-at-28-bytes claim).

    The maximum possible data bandwidth is what 256-byte payloads
    achieve; efficiency is payload ÷ (payload + header) normalised to
    that ceiling.
    """
    if not 1 <= payload_bytes <= MAX_PAYLOAD_BYTES:
        raise ValueError("payload must be 1..256 bytes")

    def goodput(p: int) -> float:
        from repro.constants import HEADER_BYTES, INLINE_PAYLOAD_BYTES

        wire = HEADER_BYTES if p <= INLINE_PAYLOAD_BYTES else HEADER_BYTES + p
        return p / wire

    return goodput(payload_bytes) / goodput(MAX_PAYLOAD_BYTES)


def half_bandwidth_payload() -> int:
    """Smallest payload achieving ≥50% of max data bandwidth (§III.D)."""
    for p in range(1, MAX_PAYLOAD_BYTES + 1):
        if bandwidth_efficiency(p) >= 0.5:
            return p
    raise AssertionError("unreachable: 256B is 100% by definition")
