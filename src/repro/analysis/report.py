"""Plain-text rendering of result tables and series.

Every benchmark prints its regenerated table/figure through these
helpers so that EXPERIMENTS.md, the bench output, and the tests all
show the same rows the paper reports.
"""

from __future__ import annotations

from typing import Any, Sequence


def render_table(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    float_format: str = "{:.2f}",
) -> str:
    """Fixed-width table with a title rule."""
    def fmt(v: Any) -> str:
        if isinstance(v, float):
            return float_format.format(v)
        return str(v)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [title, "=" * len(title)]
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for r in cells:
        lines.append("  ".join(r[i].rjust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def render_series(
    title: str,
    x_label: str,
    xs: Sequence[Any],
    series: dict[str, Sequence[float]],
    float_format: str = "{:.1f}",
) -> str:
    """A figure rendered as columns: x then one column per curve."""
    headers = [x_label, *series.keys()]
    rows = []
    for i, x in enumerate(xs):
        rows.append([x, *(s[i] for s in series.values())])
    return render_table(title, headers, rows, float_format=float_format)
