"""Measurement harnesses that regenerate the paper's figures and tables.

Each module drives the simulated machine through the same experiment
the paper ran and returns structured results:

* :mod:`repro.analysis.latency` — ping-pong latency vs hop count and
  the single-hop component breakdown (Figs. 5 & 6, Table 1);
* :mod:`repro.analysis.transfer` — the 2 KB transfer split into 1–64
  messages (Fig. 7) and bandwidth-efficiency vs message size (§III.D);
* :mod:`repro.analysis.reduction` — all-reduce latencies (Table 2) and
  the algorithm comparisons of §IV.B.4;
* :mod:`repro.analysis.attribution` — trace-derived per-packet latency
  attribution to Fig. 6's component taxonomy;
* :mod:`repro.analysis.critical_path` — multicast branch
  reconstruction, per-phase critical packets, and per-link contention
  hotspots from flight-recorder traces;
* :mod:`repro.analysis.report` — plain-text table/series rendering
  shared by the benchmark scripts.
"""

from repro.analysis.attribution import (
    Attribution,
    AttributionMeasurement,
    Component,
    PathSegment,
    attribute_flight,
    attribute_path,
    measure_attribution,
    render_attribution,
)
from repro.analysis.critical_path import (
    LinkHotspot,
    PhaseReport,
    branch_hops,
    branch_paths,
    critical_flight,
    hotspots_to_metrics,
    link_hotspots,
    phase_reports,
    render_hotspots,
    render_phase_reports,
)
from repro.analysis.latency import (
    breakdown_162ns,
    latency_vs_hops,
    ping_pong_ns,
)
from repro.analysis.reduction import (
    ReductionPoint,
    butterfly_vs_dimension_ordered,
    measure_allreduce,
    table2_series,
)
from repro.analysis.report import render_series, render_table
from repro.analysis.transfer import (
    anton_transfer_ns,
    bandwidth_efficiency,
    transfer_split_series,
)

__all__ = [
    "anton_transfer_ns",
    "Attribution",
    "AttributionMeasurement",
    "bandwidth_efficiency",
    "branch_hops",
    "branch_paths",
    "breakdown_162ns",
    "Component",
    "critical_flight",
    "hotspots_to_metrics",
    "LinkHotspot",
    "link_hotspots",
    "PathSegment",
    "PhaseReport",
    "phase_reports",
    "attribute_flight",
    "attribute_path",
    "measure_attribution",
    "render_attribution",
    "render_hotspots",
    "render_phase_reports",
    "latency_vs_hops",
    "ping_pong_ns",
    "ReductionPoint",
    "butterfly_vs_dimension_ordered",
    "measure_allreduce",
    "table2_series",
    "render_series",
    "render_table",
    "transfer_split_series",
]
