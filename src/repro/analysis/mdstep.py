"""MD time-step measurement harnesses (Table 3, Figs. 11–13).

These drive the full co-simulation (:class:`repro.md.machine.AntonMD`)
through the paper's machine-level experiments:

* :func:`run_table3` — critical-path communication and total time for
  the DHFR benchmark on a 512-node machine, next to the Desmond
  baseline model;
* :func:`fig11_series` — step time versus simulated time with and
  without bond-program regeneration.  Between epochs the particle
  system *diffuses* (a random-walk surrogate for the real dynamics —
  DESIGN.md §1 documents the substitution) and only the bond phase is
  re-simulated, since that is the only phase whose cost the drift
  changes;
* :func:`fig12_series` — average step time versus migration interval;
* :func:`fig13_timeline` — the two-time-step activity chart.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.constants import DHFR_ATOMS, FIG12_PARTICLES
from repro.md.forcefield import ForceField
from repro.md.machine import AntonMD, StepReport
from repro.md.system import ChemicalSystem, synthetic_dhfr
from repro.trace.stats import CriticalPathStats, per_node_communication_split

#: Default benchmark machine (the paper's 512-node configuration).
DEFAULT_SHAPE = (8, 8, 8)

#: Random-walk step (Å per MD step, RMS per axis) of the diffusion
#: surrogate.  Water at 300 K has D ≈ 0.23 Å²/ps; with a 2.5 fs step
#: the per-step RMS displacement is √(2·D·dt) ≈ 0.034 Å.
DIFFUSION_SIGMA_A = 0.034


def build_dhfr_md(
    shape: tuple[int, int, int] = DEFAULT_SHAPE,
    atoms: int = DHFR_ATOMS,
    slack: float = 1.0,
    migration_interval: int = 0,
    grid: Optional[int] = None,
    seed: int = 0,
) -> AntonMD:
    """The Table 3 configuration: DHFR-scale system, 13 Å cutoff,
    32³ long-range grid, long-range + thermostat every other step.

    ``grid`` defaults to 4 points per node per dimension (32 on the
    paper's 8×8×8), keeping reduced-scale runs sensible.
    """
    system = synthetic_dhfr(atoms=atoms, seed=seed)
    ff = ForceField(cutoff=13.0, ewald_alpha=0.3)
    if grid is None:
        grid = 4 * max(shape)
    return AntonMD(
        system,
        shape,
        ff=ff,
        grid=grid,
        payload_mode=False,
        slack=slack,
        migration_interval=migration_interval,
        seed=seed,
    )


# ---------------------------------------------------------------------------
# Table 3
# ---------------------------------------------------------------------------

@dataclass
class Table3Row:
    """One Anton-side row of Table 3."""

    name: str
    communication_us: float
    total_us: float


def _split(md: AntonMD, name: str, lo: float, hi: float) -> CriticalPathStats:
    return per_node_communication_split(md.recorder, name, lo, hi)


def run_table3(md: Optional[AntonMD] = None) -> dict[str, Table3Row]:
    """Simulate one range-limited and one long-range step and derive
    every Anton row of Table 3."""
    md = md or build_dhfr_md()

    def step_bounds(report: StepReport) -> tuple[float, float]:
        lo = min(v[0] for v in report.phase_spans.values())
        hi = max(v[1] for v in report.phase_spans.values())
        return lo, hi

    rl_report = md.run_step("range_limited")
    rl_lo, rl_hi = step_bounds(rl_report)
    rl = _split(md, "range_limited", rl_lo, rl_hi)

    lr_report = md.run_step("long_range")
    lr_lo, lr_hi = step_bounds(lr_report)
    lr = _split(md, "long_range", lr_lo, lr_hi)

    # The FFT row uses the focused transfer window (the six
    # inter-stage transfers); the broader "fft_convolution" span also
    # contains waits that overlap other phases (see EXPERIMENTS.md).
    fft_span = lr_report.phase_spans.get(
        "fft_transfers", lr_report.phase_spans["fft_convolution"]
    )
    fft = _split(md, "fft_convolution", *fft_span)
    th_lo, th_hi = lr_report.phase_spans["thermostat"]
    thermo = _split(md, "thermostat", th_lo, th_hi)

    def row(name: str, stats: CriticalPathStats) -> Table3Row:
        return Table3Row(name, stats.communication_us, stats.total_us)

    avg = Table3Row(
        "average",
        (rl.communication_us + lr.communication_us) / 2.0,
        (rl.total_us + lr.total_us) / 2.0,
    )
    return {
        "average": avg,
        "range_limited": row("range_limited", rl),
        "long_range": row("long_range", lr),
        "fft_convolution": row("fft_convolution", fft),
        "thermostat": row("thermostat", thermo),
    }


# ---------------------------------------------------------------------------
# Figure 11 — bond program regeneration
# ---------------------------------------------------------------------------

@dataclass
class Fig11Point:
    """One x-position of Fig. 11 (both curves)."""

    steps_completed: int
    step_time_no_regen_us: float
    step_time_with_regen_us: float


_diffusion_state: dict[int, dict] = {}


def _molecule_ids(system: ChemicalSystem) -> np.ndarray:
    """Connected-component (molecule) id per atom, from the bond list."""
    state = _diffusion_state.setdefault(id(system), {})
    if "ids" in state:
        return state["ids"]
    parent = np.arange(system.num_atoms)

    def find(a: int) -> int:
        while parent[a] != a:
            parent[a] = parent[parent[a]]
            a = parent[a]
        return a

    for i, j in system.bonds:
        ri, rj = find(int(i)), find(int(j))
        if ri != rj:
            parent[ri] = rj
    roots = np.array([find(a) for a in range(system.num_atoms)])
    _u, ids = np.unique(roots, return_inverse=True)
    state["ids"] = ids
    return ids


def _diffuse(system: ChemicalSystem, steps: int, rng: np.random.Generator) -> None:
    """Advance the diffusion surrogate by ``steps`` MD steps.

    Long-time self-diffusion in a liquid moves molecules through the
    sample while the density stays uniform.  The surrogate captures
    exactly that with a **site-exchange model**: molecule centre-of-
    mass positions at t=0 become a fixed set of *sites*, and diffusion
    is a random walk of molecules over sites — pairs of (equal-size)
    molecules within the epoch's diffusion distance swap sites.
    Density, molecule geometry, and bond lengths are preserved
    *exactly*; only the home-box assignment of each molecule evolves —
    which is precisely the quantity the bond program cares about
    (§IV.B.2).  The largest molecule (the protein) keeps its site.
    """
    state = _diffusion_state.setdefault(id(system), {})
    ids = _molecule_ids(system)
    if "sites" not in state:
        n_mol = int(ids.max()) + 1
        sizes = np.bincount(ids, minlength=n_mol)
        coms = np.zeros((n_mol, 3))
        np.add.at(coms, ids, system.positions)
        coms /= sizes[:, None]
        state["sites"] = coms.copy()
        state["occupant"] = np.arange(n_mol)   # site -> molecule
        state["site_of"] = np.arange(n_mol)    # molecule -> site
        state["small"] = np.nonzero(sizes <= np.median(sizes))[0]
        # Atom offsets relative to the molecule's original site.
        offsets = system.positions - coms[ids]
        L = system.box_edge
        offsets -= L * np.round(offsets / L)
        state["offsets"] = offsets
    sites = state["sites"]
    occupant, site_of = state["occupant"], state["site_of"]
    small_sites = state["small"]
    L = system.box_edge
    # Per-axis RMS drift of a water-size molecule over `steps` steps.
    r = min(DIFFUSION_SIGMA_A * math.sqrt(steps) * math.sqrt(3.0), L / 2.0)
    n_swaps = len(small_sites)  # each small molecule moves about once
    for _ in range(n_swaps):
        a = small_sites[rng.integers(len(small_sites))]
        # Partner near the diffusion distance from site a (min-image).
        for _attempt in range(24):
            b = small_sites[rng.integers(len(small_sites))]
            if b == a:
                continue
            d = sites[b] - sites[a]
            d -= L * np.round(d / L)
            if np.linalg.norm(d) <= r:
                ma, mb = occupant[a], occupant[b]
                occupant[a], occupant[b] = mb, ma
                site_of[ma], site_of[mb] = b, a
                break
    # Materialise the new positions.
    ids = state["ids"]
    system.positions[:] = (
        sites[site_of[ids]] + state["offsets"]
    ) % L
    system.wrap()


def fig11_series(
    total_steps: int = 8_000_000,
    epochs: int = 8,
    regen_interval: int = 120_000,
    shape: tuple[int, int, int] = DEFAULT_SHAPE,
    atoms: int = DHFR_ATOMS,
    seed: int = 0,
) -> list[Fig11Point]:
    """Regenerate Fig. 11: time-step execution time over a long run.

    Two co-simulations share the same diffusing particle system: one
    never regenerates its bond program, the other regenerates every
    ``regen_interval`` steps.  At each sampled epoch the bond phase is
    re-simulated on the machine; the rest of the step's cost is the
    epoch-0 baseline (nothing else changes with drift — §IV.B.2).
    """
    md_no = build_dhfr_md(shape, atoms, seed=seed)
    md_re = build_dhfr_md(shape, atoms, seed=seed)
    rng_no = np.random.default_rng(seed + 1)
    rng_re = np.random.default_rng(seed + 1)  # identical drift paths

    # Baseline: the full average step at epoch 0, minus its bond phase.
    t3 = run_table3(build_dhfr_md(shape, atoms, seed=seed))
    base_step_us = t3["average"].total_us
    bond0_no = md_no.run_bond_phase_only() / 1000.0
    bond0_re = md_re.run_bond_phase_only() / 1000.0
    rest_us = base_step_us - (bond0_no + bond0_re) / 2.0

    points = [Fig11Point(0, rest_us + bond0_no, rest_us + bond0_re)]
    steps_per_epoch = total_steps // epochs
    next_regen = regen_interval
    for e in range(1, epochs + 1):
        completed = e * steps_per_epoch
        _diffuse(md_no.system, steps_per_epoch, rng_no)
        md_no.decomp.rehome_all()
        _diffuse(md_re.system, steps_per_epoch, rng_re)
        md_re.decomp.rehome_all()
        while completed >= next_regen:
            md_re.regenerate_bond_program()
            next_regen += regen_interval
        bond_no = md_no.run_bond_phase_only() / 1000.0
        bond_re = md_re.run_bond_phase_only() / 1000.0
        points.append(
            Fig11Point(completed, rest_us + bond_no, rest_us + bond_re)
        )
    return points


# ---------------------------------------------------------------------------
# Figure 12 — migration interval
# ---------------------------------------------------------------------------

@dataclass
class Fig12Point:
    migration_interval: int
    step_time_us: float
    migration_cost_us: float
    atoms_migrated: int


def fig12_series(
    intervals: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8),
    shape: tuple[int, int, int] = DEFAULT_SHAPE,
    atoms: int = FIG12_PARTICLES,
    per_step_sigma: float = 0.12,
    seed: int = 0,
) -> list[Fig12Point]:
    """Regenerate Fig. 12: average step time vs migration interval.

    For each interval N the system diffuses N steps, the migration
    protocol runs once (with the home-box slack sized for N steps of
    drift), and the measured migration time is amortised over the N
    steps on top of the interval-independent base step time.

    ``per_step_sigma`` is deliberately larger than the equilibrium
    diffusion constant: the 17,758-particle Fig. 12 benchmark is
    migration-heavy by design.
    """
    md = build_dhfr_md(shape, atoms=atoms, migration_interval=0, seed=seed)
    t3 = run_table3(md)
    base_us = t3["average"].total_us

    # The home-box slack is a build-time memory-overlap allocation:
    # it is sized once, for the *largest* interval, and held fixed —
    # so longer intervals migrate more atoms per phase, while the
    # per-phase synchronization overhead amortises (the Fig. 12
    # trade-off).
    slack = max(0.25, 3.0 * per_step_sigma * math.sqrt(max(intervals)))
    points = []
    for interval in intervals:
        rng = np.random.default_rng(seed + interval)
        md.decomp.slack = slack
        md.decomp.rehome_all()
        _diffuse_sigma(md.system, per_step_sigma * math.sqrt(interval), rng)
        moves = md.decomp.migration_moves()
        payload = {
            src: [(dst, a) for dst, a in recs] for src, recs in moves.items()
        }
        counts = md.decomp.atom_counts()
        scan = {c: int(counts[md.torus.rank(c)]) for c in md.torus.nodes()}
        result = md.migration.run(payload, scan_atoms=scan)
        md.decomp.apply_moves(moves)
        cost = result.elapsed_us
        points.append(
            Fig12Point(
                migration_interval=interval,
                step_time_us=base_us + cost / interval,
                migration_cost_us=cost,
                atoms_migrated=result.messages_sent,
            )
        )
    return points


def _diffuse_sigma(system: ChemicalSystem, sigma: float, rng) -> None:
    system.positions += rng.normal(scale=sigma, size=system.positions.shape)
    system.wrap()


# ---------------------------------------------------------------------------
# Figure 13 — activity timeline
# ---------------------------------------------------------------------------

def fig13_timeline(
    md: Optional[AntonMD] = None, buckets: int = 80
) -> tuple[str, StepReport, StepReport]:
    """Simulate a range-limited step followed by a long-range step and
    render the merged activity chart (Fig. 13's layout: one column per
    unit class, light-gray stalls shown as dots)."""
    from repro.trace.timeline import render_timeline

    md = md or build_dhfr_md()
    start = md.sim.now
    rl = md.run_step("range_limited")
    lr = md.run_step("long_range")
    end = md.sim.now
    group: dict[str, str] = {}
    for unit in md.recorder.units():
        if unit.endswith(":htis"):
            group[unit] = "HTIS"
        elif ":gc" in unit:
            group[unit] = "GC"
        elif ":ts" in unit:
            group[unit] = "TS"
    text = render_timeline(
        md.recorder, start, end, buckets=buckets, group_by=group
    )
    return text, rl, lr
