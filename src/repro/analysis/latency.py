"""Ping-pong latency measurements (Figs. 5 & 6, Table 1).

The paper measures one-way counted-remote-write latency with
unidirectional and bidirectional ping-pong tests between processing
slices.  The harness below runs the same tests on the simulated
machine:

* *unidirectional*: A sends to B, B polls, B sends back, A polls;
  one-way latency = round trip / 2 (averaged over ``rounds``);
* *bidirectional*: A and B send simultaneously each round, so each
  slice's Tensilica core handles a send and a poll per round — the
  small extra cost visible in Fig. 5's bidirectional curves emerges
  from that resource contention, not from an explicit model term.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asic.node import Machine, build_machine
from repro.constants import (
    DST_RING_NS,
    LINK_ADAPTER_NS,
    POLL_SUCCESS_NS,
    SLICE_SEND_NS,
    SRC_RING_NS,
)
from repro.engine.simulator import Simulator
from repro.topology.torus import NodeCoord


_measure_seq = 0


def _fresh_pair(shape: tuple[int, int, int], dst: tuple[int, int, int],
                machine=None):
    """A (sim, src slice, dst slice) triple for one measurement.

    Passing a pre-built machine reuses it (building a 512-node machine
    costs far more than the measurement itself); buffers and counters
    get sequence-unique names so measurements never collide.
    """
    global _measure_seq
    _measure_seq += 1
    if machine is None:
        sim = Simulator()
        machine = build_machine(sim, *shape)
    sim = machine.sim
    a = machine.node((0, 0, 0)).slice(0)
    # The zero-hop case of Fig. 5 sends between processing slices on
    # the same node; remote cases use slice 0 on both ends.
    b = machine.node(dst).slice(1 if dst == (0, 0, 0) else 0)
    tag = f"pp{_measure_seq}"
    a.memory.allocate(tag, 4)
    b.memory.allocate(tag, 4)
    return sim, a, b, tag


def ping_pong_ns(
    shape: tuple[int, int, int],
    dst: tuple[int, int, int],
    payload_bytes: int = 0,
    rounds: int = 4,
    bidirectional: bool = False,
    machine=None,
) -> float:
    """One-way latency between slice 0 of node (0,0,0) and of ``dst``."""
    sim, a, b, tag = _fresh_pair(shape, dst, machine)
    if not bidirectional:
        times = {}

        def pinger():
            start = sim.now
            for r in range(rounds):
                yield from a.send_write(
                    b.node, b.name, counter_id=tag + "ping", address=(tag, 0),
                    payload_bytes=payload_bytes,
                )
                yield from a.poll(tag + "pong", r + 1)
            times["rtt"] = (sim.now - start) / rounds

        def ponger():
            for r in range(rounds):
                yield from b.poll(tag + "ping", r + 1)
                yield from b.send_write(
                    a.node, a.name, counter_id=tag + "pong", address=(tag, 0),
                    payload_bytes=payload_bytes,
                )

        p1 = sim.process(pinger())
        p2 = sim.process(ponger())
        sim.run(until=sim.all_of([p1, p2]))
        return times["rtt"] / 2.0

    # Bidirectional: both ends send each round, then poll.
    done = {}

    def side(me, peer, ctr_in, ctr_out, key):
        start = sim.now
        for r in range(rounds):
            yield from me.send_write(
                peer.node, peer.name, counter_id=ctr_out, address=(tag, 0),
                payload_bytes=payload_bytes,
            )
            yield from me.poll(ctr_in, r + 1)
        done[key] = (sim.now - start) / rounds

    p1 = sim.process(side(a, b, tag + "ba", tag + "ab", "a"))
    p2 = sim.process(side(b, a, tag + "ab", tag + "ba", "b"))
    sim.run(until=sim.all_of([p1, p2]))
    return max(done.values())


@dataclass
class HopPoint:
    """One point of Fig. 5."""

    hops: int
    destination: tuple[int, int, int]
    uni_0b: float
    uni_256b: float
    bi_0b: float
    bi_256b: float


def _destination_for_hops(shape: tuple[int, int, int], hops: int) -> tuple[int, int, int]:
    """Fig. 5's path: hops 1–4 along X, 5–8 add Y, 9–12 add Z."""
    nx, ny, nz = shape
    x = min(hops, nx // 2)
    rest = hops - x
    y = min(rest, ny // 2)
    z = rest - y
    if z > nz // 2:
        raise ValueError(f"{hops} hops unreachable on a {shape} torus")
    return (x, y, z)


def latency_vs_hops(
    shape: tuple[int, int, int] = (8, 8, 8),
    max_hops: int | None = None,
    rounds: int = 4,
) -> list[HopPoint]:
    """Regenerate Fig. 5: latency vs network hops, four curves."""
    from repro.topology.torus import Torus3D

    torus = Torus3D(*shape)
    if max_hops is None:
        max_hops = torus.max_hops()
    sim = Simulator()
    machine = build_machine(sim, *shape)
    points = []
    for hops in range(0, max_hops + 1):
        dst = _destination_for_hops(shape, hops)
        points.append(
            HopPoint(
                hops=hops,
                destination=dst,
                uni_0b=ping_pong_ns(shape, dst, 0, rounds, False, machine),
                uni_256b=ping_pong_ns(shape, dst, 256, rounds, False, machine),
                bi_0b=ping_pong_ns(shape, dst, 0, rounds, True, machine),
                bi_256b=ping_pong_ns(shape, dst, 256, rounds, True, machine),
            )
        )
    return points


def breakdown_162ns() -> list[tuple[str, float]]:
    """Fig. 6: the component breakdown of the single-X-hop write.

    Returns the labelled components in path order; they sum to the
    one-hop latency the simulator reproduces exactly.
    """
    return [
        ("write packet send initiated in processing slice", SLICE_SEND_NS),
        ("2 on-chip router hops (source)", SRC_RING_NS),
        ("X+ link adapter (incl. wire)", LINK_ADAPTER_NS),
        ("X- link adapter (incl. wire)", LINK_ADAPTER_NS),
        ("3 on-chip router hops (destination)", DST_RING_NS),
        ("successful poll of synchronization counter", POLL_SUCCESS_NS),
    ]
