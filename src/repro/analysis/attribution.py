"""Trace-derived latency attribution (the measured Fig. 6).

:func:`breakdown_162ns` reproduces Fig. 6 from calibration constants;
this module derives the same component taxonomy from a *recorded* run
instead.  Given one packet's flight-recorder spans (and, when present,
the sending slice's software-send span and the receiving slice's
successful-poll record), :func:`attribute_flight` attributes every
nanosecond between send start and poll completion to one of Fig. 6's
component categories:

* software send (packet assembly on the Tensilica core),
* on-chip router hops at the source, at transit nodes, and at the
  destination,
* link-adapter crossings and the per-dimension extra wire delay,
* payload serialization beyond the header (virtual cut-through charges
  it once, at the first link),
* head-of-line queue waits, multicast table lookups, and the final
  successful counter poll.

The attribution is *conservative by construction*: the category totals
sum exactly to the measured end-to-end time, with any residue the
structural model cannot explain (e.g. adaptive-routing jitter or
in-order delivery gating) reported as ``UNATTRIBUTED`` rather than
silently folded into a real component.  The regression tests assert
that for uncontended sends every category lands within 1 ns of the
calibration constants in :mod:`repro.constants`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Optional, Sequence

from repro.constants import (
    DST_RING_NS,
    HEADER_BYTES,
    LINK_ADAPTER_NS,
    MULTICAST_LOOKUP_NS,
    THROUGH_RING_NS,
    TORUS_LINK_EFFECTIVE_GBPS,
    WIRE_NS,
)
from repro.trace.flight import Delivery, HopRecord, PacketFlight, PollRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace.flight import FlightRecorder

_HEADER_SER_NS = HEADER_BYTES * 8.0 / TORUS_LINK_EFFECTIVE_GBPS


class Component(Enum):
    """Fig. 6's component taxonomy, extended with the categories a
    contended or multicast path can additionally occupy."""

    SOFTWARE_SEND = "software send (packet assembly in slice)"
    SRC_RING = "on-chip router hops (source)"
    QUEUE_WAIT = "head-of-line queue wait"
    RETRY = "link-level retransmission (CRC retry)"
    LINK_ADAPTER = "link adapters (incl. X wire)"
    WIRE = "extra wire delay (Y/Z dims)"
    SERIALIZATION = "payload serialization beyond header"
    MCAST_LOOKUP = "multicast table lookup"
    TRANSIT_RING = "on-chip router hops (transit)"
    DST_RING = "on-chip router hops (destination)"
    RECEIVE = "successful poll of synchronization counter"
    UNATTRIBUTED = "unattributed (jitter / ordering)"


#: Rendering and summation order of the taxonomy (path order).
COMPONENT_ORDER = tuple(Component)


@dataclass(slots=True)
class PathSegment:
    """One attributed stretch of a packet's causal chain."""

    component: Component
    start_ns: float
    end_ns: float
    detail: str = ""

    @property
    def duration_ns(self) -> float:
        return self.end_ns - self.start_ns


@dataclass
class Attribution:
    """Component breakdown of one end-to-end packet journey.

    ``totals`` always contains every category (zero when unused), so
    reports across packets align; ``segments`` give the path order.
    """

    packet_id: int
    start_ns: float
    end_ns: float
    segments: list[PathSegment] = field(default_factory=list)

    @property
    def total_ns(self) -> float:
        return self.end_ns - self.start_ns

    @property
    def totals(self) -> dict[Component, float]:
        out = {c: 0.0 for c in COMPONENT_ORDER}
        for seg in self.segments:
            out[seg.component] += seg.duration_ns
        return out

    def ns(self, component: Component) -> float:
        return self.totals[component]

    def check(self, tol_ns: float = 1e-6) -> None:
        """Assert the segments tile [start, end] exactly."""
        covered = sum(seg.duration_ns for seg in self.segments)
        if abs(covered - self.total_ns) > tol_ns:
            raise AssertionError(
                f"attribution of packet {self.packet_id} covers "
                f"{covered} ns of a {self.total_ns} ns journey"
            )


def payload_extra_ns(wire_bytes: int) -> float:
    """Serialization latency beyond the header for a packet of
    ``wire_bytes`` (virtual cut-through charges it once, at the first
    link; the header's own wire time overlaps the adapter latency)."""
    return max(
        0.0, wire_bytes * 8.0 / TORUS_LINK_EFFECTIVE_GBPS - _HEADER_SER_NS
    )


def hop_components(
    hop: HopRecord,
    *,
    first_link: bool,
    terminal: bool,
    multicast: bool,
    payload_extra_ns: float,
    segment_end_ns: float,
) -> list[tuple[Component, float, str]]:
    """Decompose one hop's measured ``[grant, segment_end]`` stretch.

    The structural parts come from the calibrated latency model (the
    same arithmetic the transport charges); whatever measured time they
    do not explain is returned as ``UNATTRIBUTED`` so the decomposition
    still tiles the measured interval exactly.  Shared by
    :func:`attribute_path` and the congestion X-ray's per-packet delay
    decomposition (:mod:`repro.congestion.decompose`), so the two views
    can never disagree on the calibrated arithmetic.
    """
    parts: list[tuple[Component, float, str]] = []
    measured = segment_end_ns - hop.grant_ns
    if hop.retry_ns > 0.0:
        # Fault injection: the link-level protocol spent this long on
        # failed attempts (serialization + CRC detect + NAK + backoff)
        # before the transmission that went through.
        parts.append(
            (Component.RETRY, hop.retry_ns,
             f"{hop.retries} retransmission(s) on {hop.link}")
        )
    parts.append(
        (Component.LINK_ADAPTER, 2 * LINK_ADAPTER_NS, f"{hop.link} pair")
    )
    wire_extra = WIRE_NS[hop.dim] - WIRE_NS["x"]
    if wire_extra > 0:
        parts.append((Component.WIRE, wire_extra, f"{hop.dim} wire"))
    if multicast:
        parts.append((Component.MCAST_LOOKUP, MULTICAST_LOOKUP_NS, hop.link))
    if first_link:
        if payload_extra_ns > 0:
            parts.append(
                (Component.SERIALIZATION, payload_extra_ns, "first link")
            )
    else:
        parts.append(
            (Component.TRANSIT_RING, THROUGH_RING_NS[hop.dim],
             f"via {hop.from_node}")
        )
    if terminal:
        parts.append((Component.DST_RING, DST_RING_NS, ""))
    explained = sum(d for _, d, _ in parts)
    residue = measured - explained
    if abs(residue) > 1e-9:
        parts.append((Component.UNATTRIBUTED, residue, f"residue at {hop.link}"))
    return parts


#: Backward-compatible alias (the helper predates its public API).
_hop_components = hop_components


def attribute_path(
    flight: PacketFlight,
    hops: Sequence[HopRecord],
    delivery: Delivery,
    poll: Optional[PollRecord] = None,
) -> Attribution:
    """Attribute one causal chain (injection → ``delivery``) built from
    ``hops`` — for unicast the flight's hop list, for multicast one
    branch of the fan-out tree (see
    :func:`repro.analysis.critical_path.branch_hops`).
    """
    start = (
        flight.send_begin_ns if flight.send_begin_ns is not None else flight.inject_ns
    )
    end = poll.done_ns if poll is not None else delivery.time_ns
    attr = Attribution(packet_id=flight.packet_id, start_ns=start, end_ns=end)
    segs = attr.segments
    cursor = start
    if flight.send_begin_ns is not None:
        segs.append(
            PathSegment(Component.SOFTWARE_SEND, cursor, flight.inject_ns,
                        flight.src_client)
        )
        cursor = flight.inject_ns
    payload_extra = payload_extra_ns(flight.wire_bytes)
    if not hops:
        # Intra-node delivery: source ring only (the message is
        # delivered on the way around the on-chip ring).
        segs.append(
            PathSegment(Component.SRC_RING, cursor, delivery.time_ns, "local")
        )
        cursor = delivery.time_ns
    else:
        segs.append(
            PathSegment(Component.SRC_RING, cursor, hops[0].enqueue_ns, "")
        )
        cursor = hops[0].enqueue_ns
        for i, hop in enumerate(hops):
            if hop.grant_ns > hop.enqueue_ns:
                segs.append(
                    PathSegment(
                        Component.QUEUE_WAIT, hop.enqueue_ns, hop.grant_ns,
                        f"{hop.link} behind {hop.queue_depth}",
                    )
                )
            cursor = hop.grant_ns
            seg_end = (
                hops[i + 1].enqueue_ns if i + 1 < len(hops) else delivery.time_ns
            )
            for comp, dur, detail in _hop_components(
                hop,
                first_link=(i == 0),
                terminal=(i + 1 == len(hops)),
                multicast=flight.multicast,
                payload_extra_ns=payload_extra,
                segment_end_ns=seg_end,
            ):
                segs.append(PathSegment(comp, cursor, cursor + dur, detail))
                cursor += dur
            cursor = seg_end
    if poll is not None:
        segs.append(
            PathSegment(Component.RECEIVE, delivery.time_ns, poll.done_ns,
                        poll.counter_id)
        )
        cursor = poll.done_ns
    attr.check()
    return attr


def attribute_flight(
    flight: PacketFlight,
    recorder: "Optional[FlightRecorder]" = None,
    delivery: Optional[Delivery] = None,
) -> Attribution:
    """Attribute a unicast flight end to end.

    When ``recorder`` is given, the receiver's successful poll is
    joined on so the attribution covers the full Fig. 6 span (send
    begin → poll done); otherwise it ends at delivery.
    """
    if not flight.deliveries:
        raise ValueError(f"packet {flight.packet_id} was never delivered")
    if delivery is None:
        delivery = flight.deliveries[-1]
    poll = recorder.poll_for(flight, delivery) if recorder is not None else None
    return attribute_path(flight, flight.hops, delivery, poll)


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def render_attribution(
    attr: Attribution,
    title: str = "Trace-derived latency attribution",
    local_id: Optional[int] = None,
) -> str:
    """Fig. 6-style component table for one attributed journey.

    ``local_id`` substitutes a dense per-run packet id for the raw
    process-global one, keeping reports byte-identical across runs.
    """
    from repro.analysis.report import render_table

    rows = []
    for comp, ns in attr.totals.items():
        if ns != 0.0:
            rows.append([comp.value, ns])
    rows.append(["TOTAL (trace-derived)", attr.total_ns])
    shown = attr.packet_id if local_id is None else local_id
    return render_table(
        f"{title} (packet #{shown})", ["component", "ns"], rows,
        float_format="{:.1f}",
    )


# ---------------------------------------------------------------------------
# Measurement harness behind ``python -m repro attribute latency``
# ---------------------------------------------------------------------------

@dataclass
class AttributionMeasurement:
    """One attributed single-write experiment."""

    hops: int
    shape: tuple[int, int, int]
    destination: tuple[int, int, int]
    payload_bytes: int
    attribution: Attribution
    elapsed_ns: float  # simulated end-to-end (send start -> poll done)


def measure_attribution(
    hops: int = 1,
    shape: tuple[int, int, int] = (8, 8, 8),
    payload_bytes: int = 0,
) -> AttributionMeasurement:
    """Run one traced counted remote write over ``hops`` network hops
    and attribute its recorded spans.

    The experiment is the Fig. 6 setup: a single uncontended write from
    slice 0 of node (0,0,0) followed by the receiver's successful poll;
    the attribution's total equals the simulated end-to-end latency
    exactly, and each category lands on its calibration constant.
    """
    from repro.analysis.latency import _destination_for_hops
    from repro.asic.node import build_machine
    from repro.engine.simulator import Simulator
    from repro.trace.flight import FlightRecorder, use_flight

    dst_coord = _destination_for_hops(shape, hops)
    sim = Simulator()
    fl = FlightRecorder()
    with use_flight(fl):
        machine = build_machine(sim, *shape)
    src = machine.node((0, 0, 0)).slice(0)
    # The 0-hop case sends between slices of one node, as in Fig. 5.
    dst = machine.node(dst_coord).slice(1 if hops == 0 else 0)
    dst.memory.allocate("attr", 1)
    done = {}

    def sender():
        yield from src.send_write(
            dst.node, dst.name, counter_id="attr", address=("attr", 0),
            payload_bytes=payload_bytes,
        )

    def receiver():
        done["t"] = yield from dst.poll("attr", 1)

    start = sim.now
    p1 = sim.process(sender())
    p2 = sim.process(receiver())
    sim.run(until=sim.all_of([p1, p2]))
    [flight] = fl.packets()
    attr = attribute_flight(flight, fl)
    return AttributionMeasurement(
        hops=hops,
        shape=shape,
        destination=dst_coord,
        payload_bytes=payload_bytes,
        attribution=attr,
        elapsed_ns=done["t"] - start,
    )
