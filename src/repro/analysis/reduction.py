"""All-reduce measurement harness (Table 2, §IV.B.4).

Thin wrappers that build a fresh machine per configuration and measure
the dimension-ordered collective — the same procedure the Table 2
benchmark uses, exposed as a library API.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asic.node import build_machine
from repro.comm.collectives import AllReduce, ButterflyAllReduce
from repro.engine.simulator import Simulator

#: The Table 2 machine configurations, smallest first.
TABLE2_SHAPES: tuple[tuple[int, int, int], ...] = (
    (4, 4, 4),
    (8, 2, 8),
    (8, 8, 4),
    (8, 8, 8),
    (8, 8, 16),
)


@dataclass
class ReductionPoint:
    """Measured all-reduce latencies for one machine configuration."""

    shape: tuple[int, int, int]
    reduce0_us: float
    reduce32_us: float

    @property
    def nodes(self) -> int:
        return self.shape[0] * self.shape[1] * self.shape[2]


def measure_allreduce(shape: tuple[int, int, int]) -> ReductionPoint:
    """0-byte and 32-byte dimension-ordered all-reduce on ``shape``."""
    sim = Simulator()
    machine = build_machine(sim, *shape)
    r0 = AllReduce(machine, payload_bytes=0).run().elapsed_us
    r32 = AllReduce(machine, payload_bytes=32).run().elapsed_us
    return ReductionPoint(shape=shape, reduce0_us=r0, reduce32_us=r32)


def table2_series(
    shapes: tuple[tuple[int, int, int], ...] = TABLE2_SHAPES,
) -> list[ReductionPoint]:
    """Regenerate the Table 2 rows."""
    return [measure_allreduce(s) for s in shapes]


def butterfly_vs_dimension_ordered(
    shape: tuple[int, int, int] = (8, 8, 8), payload_bytes: int = 32
) -> tuple[float, float]:
    """(dimension-ordered µs, butterfly µs) on the same machine shape."""
    sim = Simulator()
    t_do = AllReduce(
        build_machine(sim, *shape), payload_bytes=payload_bytes
    ).run().elapsed_us
    sim2 = Simulator()
    t_bf = ButterflyAllReduce(
        build_machine(sim2, *shape), payload_bytes=payload_bytes
    ).run().elapsed_us
    return t_do, t_bf
