"""Critical-path extraction from flight-recorder traces.

Three views of "where did the time go" for a recorded window of
simulation:

* **Per-packet** — :func:`branch_hops` rebuilds the causal hop chain
  behind any single delivery, including one branch of a multicast
  fan-out tree (the flat hop list interleaves all branches; the
  per-hop ``from_node`` plus the torus geometry disambiguates them).
  Feed the branch to :func:`repro.analysis.attribution.attribute_path`
  for a Fig. 6-style component split of exactly that chain.
* **Per-phase** — :func:`phase_reports` finds, for every marked phase
  (a collective round, a migration, an MD-step phase), the *critical
  packet*: the one whose delivery closes the phase's longest
  dependency chain, together with the phase's aggregate queueing and
  traffic.  This is the trace-derived analogue of Table 3's
  critical-path accounting.
* **Per-link** — :func:`link_hotspots` ranks link directions by the
  head-of-line blocking they caused, with busy time and queue-depth
  percentiles, and :func:`hotspots_to_metrics` republishes the summary
  through a :class:`~repro.trace.metrics.MetricsRegistry` so hotspot
  gauges ride the same export path as every other metric.

Everything here is a pure function of recorded state — analyzers never
touch the simulator, so they can run on a live recorder mid-simulation
or on one captured long ago.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.analysis.attribution import Attribution, attribute_path
from repro.trace.flight import (
    Delivery,
    FlightRecorder,
    HopRecord,
    PacketFlight,
    PhaseSpan,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.simulator import EventHistory
    from repro.topology.torus import Torus3D
    from repro.trace.metrics import MetricsRegistry


# ---------------------------------------------------------------------------
# Per-packet: multicast branch reconstruction
# ---------------------------------------------------------------------------

def _arrivals(
    flight: PacketFlight, torus: "Torus3D"
) -> dict[tuple, HopRecord]:
    """Map each node the packet entered to the hop that carried it in.

    Multicast replication forms a tree, so every node is entered by at
    most one link; a duplicate arrival means the recorded hops are not
    a tree and reconstruction would be ambiguous.
    """
    by_dst: dict[tuple, HopRecord] = {}
    for hop in flight.hops:
        dst = tuple(torus.neighbor(hop.from_node, hop.dim, hop.sign))
        if dst in by_dst:
            raise ValueError(
                f"packet {flight.packet_id} entered node {dst} twice; "
                "hop records do not form a tree"
            )
        by_dst[dst] = hop
    return by_dst


def branch_hops(
    flight: PacketFlight, torus: "Torus3D", delivery: Delivery
) -> list[HopRecord]:
    """The causal hop chain from injection to one ``delivery``.

    For unicast this equals ``flight.hops``; for multicast it selects
    the single root-to-destination branch of the fan-out tree that
    produced this delivery (empty for the local delivery at the
    source node).
    """
    by_dst = _arrivals(flight, torus)
    src = tuple(torus.coord(flight.src_node))
    node = tuple(torus.coord(delivery.node))
    chain: list[HopRecord] = []
    while node != src:
        hop = by_dst.get(node)
        if hop is None:
            raise ValueError(
                f"no recorded hop delivers packet {flight.packet_id} "
                f"into node {node}"
            )
        chain.append(hop)
        node = tuple(torus.coord(hop.from_node))
    chain.reverse()
    return chain


def branch_paths(
    flight: PacketFlight, torus: "Torus3D"
) -> list[tuple[Delivery, list[HopRecord]]]:
    """Every delivery of ``flight`` with its causal hop chain, in
    delivery order."""
    return [(d, branch_hops(flight, torus, d)) for d in flight.deliveries]


# ---------------------------------------------------------------------------
# Per-phase: critical packet and aggregate accounting
# ---------------------------------------------------------------------------

@dataclass
class PhaseReport:
    """Trace-derived critical-path accounting for one marked phase."""

    phase: PhaseSpan
    #: Flights whose life overlaps the phase window.
    packets: int
    #: Deliveries landing inside the window.
    deliveries: int
    #: Total head-of-line blocking accumulated inside the window.
    queue_wait_ns: float
    #: Dense id of the critical packet (None for a phase with no
    #: deliveries, e.g. pure-compute phases).
    critical_local_id: Optional[int]
    #: The critical packet's last in-window delivery.
    critical_delivery: Optional[Delivery]
    #: Component attribution of the critical packet's causal chain.
    critical_attribution: Optional[Attribution]
    #: Simulator events executed inside the window, when an
    #: :class:`~repro.engine.simulator.EventHistory` was supplied.
    events: Optional[int] = None

    @property
    def name(self) -> str:
        return self.phase.name

    @property
    def duration_ns(self) -> float:
        assert self.phase.end_ns is not None
        return self.phase.end_ns - self.phase.begin_ns


def critical_flight(
    recorder: FlightRecorder, begin_ns: float, end_ns: float
) -> Optional[tuple[PacketFlight, Delivery]]:
    """The flight whose delivery lands last inside ``[begin, end]``.

    The phase cannot close before its last delivery is consumed, so
    that delivery terminates the longest dependency chain through the
    window.  Ties break toward the earliest-injected packet so the
    answer is deterministic.
    """
    local = recorder.local_ids()
    best: Optional[tuple[PacketFlight, Delivery]] = None
    best_key: Optional[tuple[float, int]] = None
    for f in recorder.flights_in(begin_ns, end_ns):
        for d in f.deliveries:
            if not begin_ns <= d.time_ns <= end_ns:
                continue
            key = (d.time_ns, -local[f.packet_id])
            if best_key is None or key > best_key:
                best_key = key
                best = (f, d)
    return best


def phase_reports(
    recorder: FlightRecorder,
    torus: "Torus3D",
    history: "Optional[EventHistory]" = None,
) -> list[PhaseReport]:
    """One :class:`PhaseReport` per closed phase, in begin order."""
    local = recorder.local_ids()
    out = []
    for span in recorder.closed_phases():
        begin, end = span.begin_ns, span.end_ns
        assert end is not None
        in_window = recorder.flights_in(begin, end)
        deliveries = sum(
            1
            for f in in_window
            for d in f.deliveries
            if begin <= d.time_ns <= end
        )
        wait = sum(
            h.wait_ns
            for f in in_window
            for h in f.hops
            if begin <= h.enqueue_ns <= end
        )
        crit = critical_flight(recorder, begin, end)
        attribution = None
        crit_id = None
        crit_delivery = None
        if crit is not None:
            flight, delivery = crit
            crit_id = local[flight.packet_id]
            crit_delivery = delivery
            hops = branch_hops(flight, torus, delivery)
            attribution = attribute_path(
                flight, hops, delivery, recorder.poll_for(flight, delivery)
            )
        out.append(
            PhaseReport(
                phase=span,
                packets=len(in_window),
                deliveries=deliveries,
                queue_wait_ns=wait,
                critical_local_id=crit_id,
                critical_delivery=crit_delivery,
                critical_attribution=attribution,
                events=None if history is None else history.count_in(begin, end),
            )
        )
    return out


def render_phase_reports(reports: list[PhaseReport]) -> str:
    """Phase table: duration, traffic, queueing, critical packet."""
    from repro.analysis.report import render_table

    rows = []
    for r in reports:
        rows.append(
            [
                r.name,
                r.duration_ns,
                r.packets,
                r.deliveries,
                r.queue_wait_ns,
                "-" if r.critical_local_id is None else f"#{r.critical_local_id}",
            ]
        )
    return render_table(
        "Phase critical paths",
        ["phase", "ns", "packets", "deliveries", "queue wait ns", "critical"],
        rows,
        float_format="{:.1f}",
    )


# ---------------------------------------------------------------------------
# Per-link: contention hotspots
# ---------------------------------------------------------------------------

@dataclass(slots=True)
class LinkHotspot:
    """Contention summary for one link direction."""

    link: str
    traversals: int
    busy_ns: float
    wait_ns: float
    max_queue_depth: int
    p50_queue_depth: int
    p90_queue_depth: int
    p99_queue_depth: int


def link_hotspots(
    recorder: FlightRecorder, top: Optional[int] = None
) -> list[LinkHotspot]:
    """Link directions ranked worst-offender first.

    Ordered by total head-of-line wait caused, then busy time, then
    name (so the ranking is deterministic even among idle links).
    ``top`` truncates to the N worst.
    """
    spots = []
    for link in recorder.links():
        spots.append(
            LinkHotspot(
                link=link,
                traversals=len(recorder.link_occupancy.get(link, [])),
                busy_ns=recorder.link_busy_ns(link),
                wait_ns=recorder.link_wait_ns(link),
                max_queue_depth=recorder.max_queue_depth(link),
                p50_queue_depth=recorder.queue_depth_percentile(link, 50),
                p90_queue_depth=recorder.queue_depth_percentile(link, 90),
                p99_queue_depth=recorder.queue_depth_percentile(link, 99),
            )
        )
    spots.sort(key=lambda s: (-s.wait_ns, -s.busy_ns, s.link))
    return spots if top is None else spots[:top]


def render_hotspots(
    spots: list[LinkHotspot], title: str = "Link contention hotspots"
) -> str:
    from repro.analysis.report import render_table

    rows = [
        [
            s.link,
            s.traversals,
            s.busy_ns,
            s.wait_ns,
            s.max_queue_depth,
            s.p50_queue_depth,
            s.p90_queue_depth,
            s.p99_queue_depth,
        ]
        for s in spots
    ]
    return render_table(
        title,
        ["link", "uses", "busy ns", "wait ns", "max q", "p50", "p90", "p99"],
        rows,
        float_format="{:.1f}",
    )


def hotspots_to_metrics(
    recorder: FlightRecorder,
    registry: "MetricsRegistry",
    top: int = 10,
) -> list[LinkHotspot]:
    """Publish the worst ``top`` hotspots as metrics.

    Per ranked link: ``net.hotspot.<link>.wait_ns`` and
    ``net.hotspot.<link>.busy_ns`` gauges plus a
    ``net.hotspot.<link>.queue_depth_p99`` gauge; plus the aggregates
    ``net.hotspot.total_wait_ns`` and ``net.hotspot.contended_links``.
    Returns the ranked list it published.
    """
    spots = link_hotspots(recorder, top=top)
    total_wait = sum(s.wait_ns for s in link_hotspots(recorder))
    for s in spots:
        registry.gauge(f"net.hotspot.{s.link}.wait_ns").set(s.wait_ns)
        registry.gauge(f"net.hotspot.{s.link}.busy_ns").set(s.busy_ns)
        registry.gauge(f"net.hotspot.{s.link}.queue_depth_p99").set(
            s.p99_queue_depth
        )
    registry.gauge("net.hotspot.total_wait_ns").set(total_wait)
    registry.gauge("net.hotspot.contended_links").set(
        sum(1 for s in link_hotspots(recorder) if s.wait_ns > 0)
    )
    return spots
