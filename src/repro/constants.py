"""Calibrated hardware constants for the Anton communication model.

Every number in this module is taken from, or derived from, the paper
"Exploiting 162-Nanosecond End-to-End Communication Latency on Anton"
(SC 2010).  The derivations are documented inline; DESIGN.md §3 collects
the sources.

Units: times in **nanoseconds**, bandwidths in **Gbit/s**, sizes in
**bytes**, unless a suffix says otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# ---------------------------------------------------------------------------
# Figure 6: single X-hop latency breakdown (0-byte counted remote write)
# ---------------------------------------------------------------------------

#: Packet assembly + injection at a processing slice ("Write packet send
#: initiated in processing slice" to entry into the on-chip ring).
SLICE_SEND_NS = 36.0

#: Source-side on-chip ring traversal: 2 router hops.
SRC_RING_NS = 19.0

#: One link-adapter crossing.  The paper folds the passive-wire delay
#: into the adapter figure, so this is 20 ns per side for the X
#: dimension including up to 4 ns of wire.
LINK_ADAPTER_NS = 20.0

#: Destination-side on-chip ring traversal: 3 router hops.
DST_RING_NS = 25.0

#: Cost of the *successful* poll of a processing-slice synchronization
#: counter (local poll, very low latency).
POLL_SUCCESS_NS = 42.0

#: End-to-end latency of a 0-byte write crossing one X link:
#: 36 + 19 + 20 + 20 + 25 + 42 = 162 ns (the paper's headline number).
ONE_HOP_X_NS = (
    SLICE_SEND_NS
    + SRC_RING_NS
    + 2 * LINK_ADAPTER_NS
    + DST_RING_NS
    + POLL_SUCCESS_NS
)

#: Intra-node (0-hop) latency: slice -> on-chip ring -> slice on the
#: same ASIC.  No link adapters are crossed; we charge the source-side
#: ring traversal only (the message is delivered on the way around).
ZERO_HOP_NS = SLICE_SEND_NS + SRC_RING_NS + POLL_SUCCESS_NS  # = 97 ns

# ---------------------------------------------------------------------------
# Figure 5: per-hop marginal costs and wire delays
# ---------------------------------------------------------------------------

#: Maximum passive-wire delays per dimension (Fig. 6 caption).  X wires
#: are shortest (neighbouring boards), Z longest.
WIRE_NS = {"x": 4.0, "y": 8.0, "z": 10.0}

#: Marginal cost of one additional network hop, per dimension (slopes
#: of Fig. 5).  X hops traverse more on-chip routers per transit node
#: than Y or Z hops, hence the higher cost.
HOP_NS = {"x": 76.0, "y": 54.0, "z": 54.0}

#: Link crossing cost per dimension: two adapter crossings with the
#: dimension's extra wire delay relative to X (whose wire is already
#: folded into LINK_ADAPTER_NS).
LINK_COST_NS = {
    "x": 2 * LINK_ADAPTER_NS,                                  # 40 ns
    "y": 2 * LINK_ADAPTER_NS + (WIRE_NS["y"] - WIRE_NS["x"]),  # 44 ns
    "z": 2 * LINK_ADAPTER_NS + (WIRE_NS["z"] - WIRE_NS["x"]),  # 46 ns
}

#: On-chip ring crossing cost at a *transit* node, per outgoing
#: dimension, derived so that LINK_COST + THROUGH_RING equals the
#: Fig. 5 marginal hop cost.  X adapters sit far apart on the six-router
#: ring (≈4 router hops); Y/Z adapters are adjacent (≈1 hop).
THROUGH_RING_NS = {d: HOP_NS[d] - LINK_COST_NS[d] for d in ("x", "y", "z")}

# ---------------------------------------------------------------------------
# Packets and bandwidth (§III.A, §III.D)
# ---------------------------------------------------------------------------

#: Packet header size.  Writes of up to 8 bytes carry the data in the
#: header itself ("payload-in-header").
HEADER_BYTES = 32
MAX_PAYLOAD_BYTES = 256
INLINE_PAYLOAD_BYTES = 8

#: Raw signalling rate of one torus link, per direction.
TORUS_LINK_RAW_GBPS = 50.6

#: Effective data bandwidth of one torus link, per direction.  The
#: serialization model charges (header + payload) bytes at this rate;
#: with that model a 28-byte payload achieves ~50% of the bandwidth a
#: 256-byte payload achieves, matching §III.D.
TORUS_LINK_EFFECTIVE_GBPS = 36.8

#: On-chip ring bandwidth (Fig. 6 annotation).
ONCHIP_RING_GBPS = 124.2

#: Accumulation-memory synchronization counters are polled by a
#: processing slice *across the on-chip ring* (§III.B).  A remote poll
#: is a request/response transaction — two ring round-trips' worth of
#: traversals plus the poll issue itself, and in practice at least one
#: unsuccessful attempt precedes the successful one:
#: 2×(19+19) + 42 + 42 ≈ 160 ns.  (Modelling choice; the paper gives no
#: number, only that the overhead is "much larger" than a local poll —
#: large enough that Anton sums reduction rounds in slice software
#: instead, §IV.B.4, which the accum-reduce ablation verifies.)
ACCUM_POLL_NS = 4 * SRC_RING_NS + 2 * POLL_SUCCESS_NS  # = 160 ns

#: Time for a slice to read one 32-byte line from an accumulation
#: memory across the ring after the counter poll succeeds.
ACCUM_READ_NS = 2 * SRC_RING_NS + 32 * 8 / ONCHIP_RING_GBPS

# ---------------------------------------------------------------------------
# Multicast (§III.A)
# ---------------------------------------------------------------------------

#: Maximum number of precomputed multicast patterns per node.
MAX_MULTICAST_PATTERNS = 256

#: Table lookup + replication cost when a multicast packet is forwarded
#: at a node (folded into through-node cost; extra copies are free in
#: latency but each consumes link serialization on its outgoing link).
MULTICAST_LOOKUP_NS = 4.0

# ---------------------------------------------------------------------------
# Synchronization / migration (§IV.B.5)
# ---------------------------------------------------------------------------

#: Measured cost of the migration flush synchronization: a multicast
#: counted remote write to all 26 neighbours using the in-order flag.
MIGRATION_SYNC_NS = 560.0

#: Software cost for the Tensilica core to process one migration
#: message from the hardware FIFO (dequeue, parse, bookkeeping).
#: Calibrated so migration-every-step costs ≈2.5 µs more per step than
#: migration-every-8-steps on the Fig. 12 workload.
FIFO_PROCESS_NS = 50.0

#: Tail-pointer poll of the hardware message FIFO.
FIFO_POLL_NS = 42.0

#: Per-atom bookkeeping during a migration phase: every node scans its
#: resident atoms against the (relaxed) home-box bounds and updates
#: expected-packet counts for leavers/arrivers — the "additional
#: bookkeeping requirements" that make migrations "fairly expensive"
#: (§IV.B.5).  Calibrated so migrating every step costs ≈2 µs more
#: than migrating every 8 steps on the Fig. 12 workload.
MIGRATION_SCAN_NS_PER_ATOM = 35.0

#: Software summation rate on a Tensilica core during all-reduce
#: rounds: per 4-byte word per source (load + add + store at a few
#: hundred MHz).  The paper notes the sums are done in software in the
#: processing slices because polling accumulation-memory counters would
#: cost more (§IV.B.4).
REDUCE_SUM_NS_PER_WORD = 2.0

# ---------------------------------------------------------------------------
# Commodity-cluster baseline (Table 1, Fig. 7, §IV.B.4)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ClusterParams:
    """Parameters of a commodity cluster interconnect model.

    The defaults describe the DDR2 InfiniBand cluster used for the
    paper's comparisons (Fig. 7, Table 3 via Desmond timings).
    """

    #: End-to-end 0-byte MPI latency between two nodes (half round trip).
    latency_ns: float = 2160.0  # Roadrunner IB row of Table 1
    #: Per-message CPU overhead at the sender (marshalling + post).
    send_overhead_ns: float = 700.0
    #: Per-message CPU overhead at the receiver (poll + completion).
    recv_overhead_ns: float = 600.0
    #: Minimum gap between successive message injections (message rate).
    inter_message_gap_ns: float = 300.0
    #: Effective point-to-point data bandwidth, Gbit/s (DDR2 IB 4x).
    bandwidth_gbps: float = 13.0
    #: Measured 32-byte all-reduce across 512 nodes (§IV.B.4).
    allreduce_512_ns: float = 35_500.0


DDR2_INFINIBAND = ClusterParams()

# ---------------------------------------------------------------------------
# Paper-reported machine-level results (used for EXPERIMENTS.md deltas,
# never fed back into the simulator).
# ---------------------------------------------------------------------------

#: Table 2 — global all-reduce times (µs) per machine configuration.
PAPER_TABLE2_US = {
    (8, 8, 16): {"reduce0": 1.56, "reduce32": 2.06},
    (8, 8, 8): {"reduce0": 1.32, "reduce32": 1.77},
    (8, 8, 4): {"reduce0": 1.27, "reduce32": 1.68},
    (8, 2, 8): {"reduce0": 1.24, "reduce32": 1.64},
    (4, 4, 4): {"reduce0": 0.96, "reduce32": 1.31},
}

#: Table 3 — (communication µs, total µs) on a 512-node machine, DHFR.
PAPER_TABLE3_US = {
    "average": {"anton": (9.8, 15.6), "desmond": (262.0, 565.0)},
    "range_limited": {"anton": (5.0, 9.0), "desmond": (108.0, 351.0)},
    "long_range": {"anton": (14.6, 22.2), "desmond": (416.0, 779.0)},
    "fft_convolution": {"anton": (7.5, 8.5), "desmond": (230.0, 290.0)},
    "thermostat": {"anton": (2.6, 3.0), "desmond": (78.0, 99.0)},
}

#: BlueGene/L 512-node 16-byte tree-network all-reduce (§IV.B.4).
BGL_TREE_ALLREDUCE_512_NS = 4220.0

# ---------------------------------------------------------------------------
# MD benchmark systems (Table 3 caption, Fig. 11, Fig. 12)
# ---------------------------------------------------------------------------

#: Atom count of the DHFR benchmark (dihydrofolate reductase in water).
DHFR_ATOMS = 23_558

#: Particle count of the Fig. 12 migration benchmark.
FIG12_PARTICLES = 17_758

#: Long-range interactions + temperature control run every other step.
LONG_RANGE_INTERVAL = 2

#: Bond-program regeneration interval used in Fig. 11.
BOND_REGEN_INTERVAL = 120_000
