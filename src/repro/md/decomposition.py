"""Spatial decomposition: home boxes, import regions, migration (§II, §IV.B.5).

The chemical system is divided into a regular grid of boxes, one per
node; each node is the *home node* of the atoms in its box and updates
their positions and velocities during integration.  Two machine-facing
refinements from the paper:

* **import regions** — the set of nodes whose HTIS must receive an
  atom's position for range-limited interactions.  With Anton's
  midpoint-style assignment a position travels to every node within
  half a cutoff of its home box: "atom positions are typically
  broadcast to as many as 17 different HTIS units" (§IV.B.1) — the
  DHFR geometry reproduces that count;
* **relaxed (overlapping) home boxes** — boxes are given slack so
  migration can run every N steps instead of every step (§IV.B.5,
  Fig. 12): an atom migrates only once it leaves its home box grown by
  the slack margin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.md.system import ChemicalSystem
from repro.topology.torus import NodeCoord, Torus3D


class Decomposition:
    """Maps a chemical system onto a node grid.

    Parameters
    ----------
    system:
        The molecular system (cubic box).
    torus:
        Machine topology; the home-box grid matches its shape.
    import_radius:
        Distance (Å) around a home box within which nodes receive the
        box's atom positions (≈ cutoff/2 for midpoint assignment).
    slack:
        Home-box overlap margin (Å) enabling infrequent migration.
    """

    def __init__(
        self,
        system: ChemicalSystem,
        torus: Torus3D,
        import_radius: float,
        slack: float = 0.0,
        import_volume_threshold: float = 0.0,
    ) -> None:
        if import_radius <= 0:
            raise ValueError("import_radius must be positive")
        if slack < 0:
            raise ValueError("slack must be >= 0")
        if not 0.0 <= import_volume_threshold < 1.0:
            raise ValueError("import_volume_threshold must be in [0, 1)")
        self.system = system
        self.torus = torus
        self.import_radius = import_radius
        self.slack = slack
        #: Minimum fraction of a neighbour box reachable by midpoints
        #: for it to join the import set.  0 keeps every touching box
        #: (27 for the DHFR geometry — exact, used by payload mode);
        #: Anton's clipped import regions skip boxes reachable only
        #: through a thin corner sliver — threshold ≈ 0.4 reproduces
        #: the paper's "as many as 17 HTIS units" (we get 19).
        self.import_volume_threshold = import_volume_threshold
        self.box_widths = np.array(
            [system.box_edge / torus.nx, system.box_edge / torus.ny, system.box_edge / torus.nz]
        )
        #: current home node (grid index triple) per atom — *sticky*:
        #: only migration updates it, so between migrations an atom may
        #: sit slightly outside its box (within the slack).
        self.home = self._grid_of(system.positions)

    # -- geometry -----------------------------------------------------------
    def _grid_of(self, positions: np.ndarray) -> np.ndarray:
        """Grid indices (n, 3) of the boxes containing ``positions``."""
        g = np.floor(positions / self.box_widths).astype(np.int64)
        return g % np.array([self.torus.nx, self.torus.ny, self.torus.nz])

    def node_of_atom(self, i: int) -> NodeCoord:
        x, y, z = self.home[i]
        return NodeCoord(int(x), int(y), int(z))

    def atoms_of(self, node: "NodeCoord | int") -> np.ndarray:
        """Indices of atoms homed on ``node``."""
        c = self.torus.coord(node)
        mask = (
            (self.home[:, 0] == c.x)
            & (self.home[:, 1] == c.y)
            & (self.home[:, 2] == c.z)
        )
        return np.nonzero(mask)[0]

    def atom_counts(self) -> np.ndarray:
        """Number of home atoms per node (flattened in rank order)."""
        ranks = (
            self.home[:, 0]
            + self.torus.nx * (self.home[:, 1] + self.torus.ny * self.home[:, 2])
        )
        return np.bincount(ranks, minlength=self.torus.num_nodes)

    # -- import regions -------------------------------------------------------
    def _reachable_fraction(self, offset: tuple[int, int, int]) -> float:
        """Fraction of the offset box within ``import_radius`` of the
        home box (midpoint-reachable volume), by grid quadrature.

        Depends only on the offset, so the result is cached.
        """
        cached = getattr(self, "_frac_cache", None)
        if cached is None:
            cached = self._frac_cache = {}
        if offset in cached:
            return cached[offset]
        w = self.box_widths
        r = self.import_radius
        m = 12  # quadrature points per dimension
        axes = [
            (offset[d] * w[d]) + (np.arange(m) + 0.5) * (w[d] / m) for d in range(3)
        ]
        px, py, pz = np.meshgrid(*axes, indexing="ij")
        # Distance from each sample point to the home box [0, w]^3.
        ex = np.maximum(np.maximum(px - w[0], -px), 0.0)
        ey = np.maximum(np.maximum(py - w[1], -py), 0.0)
        ez = np.maximum(np.maximum(pz - w[2], -pz), 0.0)
        inside = (ex ** 2 + ey ** 2 + ez ** 2) < r ** 2
        frac = float(inside.mean())
        cached[offset] = frac
        return frac

    def import_nodes(self, node: "NodeCoord | int") -> list[NodeCoord]:
        """Nodes whose HTIS receives this node's atom positions.

        All nodes whose home box has a midpoint-reachable volume
        fraction above ``import_volume_threshold`` (the source itself
        is always included).  With the default threshold of 0 this is
        every box within ``import_radius`` of the source box.
        """
        c = self.torus.coord(node)
        out = []
        w = self.box_widths
        r = self.import_radius
        reach = np.ceil(r / w).astype(int)
        for dz in range(-reach[2], reach[2] + 1):
            for dy in range(-reach[1], reach[1] + 1):
                for dx in range(-reach[0], reach[0] + 1):
                    frac = (
                        1.0
                        if dx == dy == dz == 0
                        else self._reachable_fraction((dx, dy, dz))
                    )
                    if frac > max(self.import_volume_threshold, 0.0) or (
                        self.import_volume_threshold == 0.0 and frac > 0.0
                    ):
                        n = self.torus.wrap(NodeCoord(c.x + dx, c.y + dy, c.z + dz))
                        if n not in out:
                            out.append(n)
        return out

    def import_set_size(self) -> float:
        """Average import-set size (≈17 for the DHFR/512 geometry)."""
        sizes = [len(self.import_nodes(c)) for c in self.torus.nodes()]
        return float(np.mean(sizes))

    # -- migration ---------------------------------------------------------------
    def migration_moves(self) -> dict[NodeCoord, list[tuple[NodeCoord, int]]]:
        """Atoms that must migrate now: ``{src: [(dst, atom), ...]}``.

        An atom migrates when its position has left its home box grown
        by ``slack`` on every side (minimum-image aware).  The
        destination is the box actually containing it — guaranteed a
        Moore neighbour as long as migrations run often enough for the
        slack; a violation raises, mirroring the hard failure a real
        run would hit.
        """
        pos = self.system.positions
        w = self.box_widths
        L = self.system.box_edge
        # Minimum-image displacement from the home-box centre; inside
        # the grown box iff |d| <= w/2 + slack on every axis.
        centre = (self.home + 0.5) * w
        d = pos - centre
        d -= L * np.round(d / L)
        outside = np.any(np.abs(d) > w / 2.0 + self.slack, axis=1)
        moves: dict[NodeCoord, list[tuple[NodeCoord, int]]] = {}
        if not outside.any():
            return moves
        new_home = self._grid_of(pos[outside])
        for atom, target in zip(np.nonzero(outside)[0], new_home):
            src = NodeCoord(*map(int, self.home[atom]))
            dst = NodeCoord(*map(int, target))
            moves.setdefault(src, []).append((dst, int(atom)))
        return moves

    def apply_moves(self, moves: dict[NodeCoord, list[tuple[NodeCoord, int]]]) -> int:
        """Commit migration moves to the home map; returns atom count."""
        n = 0
        for src, records in moves.items():
            for dst, atom in records:
                self.home[atom] = (dst.x, dst.y, dst.z)
                n += 1
        return n

    def rehome_all(self) -> None:
        """Reset every atom's home to its containing box (fresh start)."""
        self.home = self._grid_of(self.system.positions)
