"""Chemical systems: atoms, bonds, and periodic boxes.

The benchmark systems of the paper are a solvated protein (DHFR,
23,558 atoms, Table 3 / Fig. 11) and a 17,758-particle system
(Fig. 12).  We cannot ship those proprietary structures, so
:func:`synthetic_dhfr` builds a *statistical* stand-in: the same atom
count, density, bond density, and spatial distribution (a compact
bonded "protein" blob surrounded by bonded water molecules).  All
communication costs in the model depend only on those statistics, so
the substitution preserves the measured behaviour (see DESIGN.md §1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

#: Simulation units: lengths in Å, energies in kcal/mol, masses in amu,
#: time in femtoseconds-scaled units where dt=1 corresponds to ~48.9 fs
#: per sqrt(amu·Å²/(kcal/mol)); we keep dt small so tests conserve
#: energy.  Boltzmann constant in kcal/(mol·K):
KB = 0.0019872041

#: Water number density, atoms per Å³ (≈ 0.1 for liquid water with
#: three atoms per molecule at 0.0334 molecules/Å³).
WATER_ATOM_DENSITY = 0.0993


@dataclass
class ChemicalSystem:
    """A molecular system with periodic cubic boundary conditions.

    Attributes
    ----------
    positions:
        ``(n, 3)`` float64 array, wrapped into ``[0, box_edge)``.
    velocities:
        ``(n, 3)`` float64 array.
    masses, charges:
        ``(n,)`` arrays.
    lj_epsilon, lj_sigma:
        Per-atom Lennard-Jones parameters; pair parameters use
        Lorentz–Berthelot combination.
    bonds:
        ``(m, 2)`` int array of bonded atom index pairs.
    bond_r0, bond_k:
        Harmonic bond parameters, length ``m``.
    box_edge:
        Cubic box edge length (Å).
    """

    positions: np.ndarray
    velocities: np.ndarray
    masses: np.ndarray
    charges: np.ndarray
    lj_epsilon: np.ndarray
    lj_sigma: np.ndarray
    bonds: np.ndarray
    bond_r0: np.ndarray
    bond_k: np.ndarray
    box_edge: float
    name: str = "system"
    #: optional three-atom angle terms (i, j, k) with j the vertex
    angles: np.ndarray = None  # type: ignore[assignment]
    angle_theta0: np.ndarray = None  # type: ignore[assignment]
    angle_k: np.ndarray = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.angles is None:
            self.angles = np.empty((0, 3), dtype=np.int64)
        if self.angle_theta0 is None:
            self.angle_theta0 = np.empty(0)
        if self.angle_k is None:
            self.angle_k = np.empty(0)
        n = self.num_atoms
        for arr, label, shape in (
            (self.velocities, "velocities", (n, 3)),
            (self.masses, "masses", (n,)),
            (self.charges, "charges", (n,)),
            (self.lj_epsilon, "lj_epsilon", (n,)),
            (self.lj_sigma, "lj_sigma", (n,)),
        ):
            if arr.shape != shape:
                raise ValueError(f"{label} has shape {arr.shape}, expected {shape}")
        if self.bonds.size and self.bonds.max() >= n:
            raise ValueError("bond index out of range")
        if self.bonds.shape[0] != self.bond_r0.shape[0] != self.bond_k.shape[0]:
            raise ValueError("bond parameter arrays disagree in length")
        if self.angles.size and self.angles.max() >= n:
            raise ValueError("angle index out of range")
        if self.angles.shape[0] != self.angle_theta0.shape[0] != self.angle_k.shape[0]:
            raise ValueError("angle parameter arrays disagree in length")
        if self.box_edge <= 0:
            raise ValueError("box edge must be positive")
        if np.any(self.masses <= 0):
            raise ValueError("masses must be positive")

    @property
    def num_atoms(self) -> int:
        return self.positions.shape[0]

    @property
    def num_bonds(self) -> int:
        return self.bonds.shape[0]

    @property
    def num_angles(self) -> int:
        return self.angles.shape[0]

    @property
    def num_bonded_terms(self) -> int:
        """Bonds plus angles — what the bond program assigns (§IV.B.2)."""
        return self.num_bonds + self.num_angles

    @property
    def volume(self) -> float:
        return self.box_edge ** 3

    @property
    def density(self) -> float:
        """Atoms per Å³."""
        return self.num_atoms / self.volume

    # -- periodic geometry ------------------------------------------------
    def wrap(self) -> None:
        """Wrap positions into the primary box in place."""
        np.mod(self.positions, self.box_edge, out=self.positions)

    def minimum_image(self, dr: np.ndarray) -> np.ndarray:
        """Apply the minimum-image convention to displacement vectors."""
        L = self.box_edge
        return dr - L * np.round(dr / L)

    def total_charge(self) -> float:
        return float(self.charges.sum())

    def copy(self) -> "ChemicalSystem":
        """Deep copy (used by integrator tests and epoch sampling)."""
        return ChemicalSystem(
            positions=self.positions.copy(),
            velocities=self.velocities.copy(),
            masses=self.masses.copy(),
            charges=self.charges.copy(),
            lj_epsilon=self.lj_epsilon.copy(),
            lj_sigma=self.lj_sigma.copy(),
            bonds=self.bonds.copy(),
            bond_r0=self.bond_r0.copy(),
            bond_k=self.bond_k.copy(),
            box_edge=self.box_edge,
            name=self.name,
            angles=self.angles.copy(),
            angle_theta0=self.angle_theta0.copy(),
            angle_k=self.angle_k.copy(),
        )


def _thermal_velocities(
    rng: np.random.Generator, masses: np.ndarray, temperature_k: float
) -> np.ndarray:
    """Maxwell–Boltzmann velocities with zero net momentum."""
    n = masses.shape[0]
    sigma = np.sqrt(KB * temperature_k / masses)[:, None]
    v = rng.normal(size=(n, 3)) * sigma
    v -= (v * masses[:, None]).sum(axis=0) / masses.sum()
    return v


def _greedy_chain_order(points: np.ndarray) -> np.ndarray:
    """Order points along a greedy nearest-neighbour path.

    Used to thread a polymer-like chain through a uniform point cloud
    so consecutive (bonded) atoms are spatial neighbours.
    """
    n = points.shape[0]
    if n <= 2:
        return np.arange(n)
    remaining = np.ones(n, dtype=bool)
    order = np.empty(n, dtype=np.int64)
    cur = 0
    order[0] = cur
    remaining[cur] = False
    for k in range(1, n):
        d2 = np.einsum(
            "ij,ij->i", points - points[cur], points - points[cur]
        )
        d2[~remaining] = np.inf
        cur = int(np.argmin(d2))
        order[k] = cur
        remaining[cur] = False
    return order


def bulk_water(
    molecules: int = 216,
    temperature_k: float = 300.0,
    seed: int = 0,
) -> ChemicalSystem:
    """A box of flexible 3-site water (O + 2 H, harmonic OH bonds).

    Molecule count sets the box size at liquid density.  Useful as a
    realistic small workload for physics tests and examples.
    """
    if molecules < 1:
        raise ValueError("need at least one molecule")
    rng = np.random.default_rng(seed)
    n = molecules * 3
    box = (molecules / 0.0334) ** (1.0 / 3.0)
    # Place oxygens on a jittered lattice to avoid overlaps.  When the
    # molecule count is not a perfect cube, lattice sites are selected
    # with an even stride so the density stays uniform (filling sites
    # in order would leave an empty slab at the top of the box).
    per_edge = int(np.ceil(molecules ** (1.0 / 3.0)))
    spacing = box / per_edge
    sites = np.stack(
        np.meshgrid(*(np.arange(per_edge),) * 3, indexing="ij"), axis=-1
    ).reshape(-1, 3)
    chosen = np.linspace(0, len(sites) - 1, molecules).round().astype(int)
    oxygens = (sites[chosen] + 0.5) * spacing
    oxygens = oxygens + rng.normal(scale=0.05 * spacing, size=(molecules, 3))

    positions = np.empty((n, 3))
    bonds = np.empty((2 * molecules, 2), dtype=np.int64)
    r_oh = 0.9572
    for m in range(molecules):
        o = 3 * m
        positions[o] = oxygens[m]
        d1 = rng.normal(size=3)
        d1 /= np.linalg.norm(d1)
        d2 = rng.normal(size=3)
        d2 -= d1 * (d2 @ d1)
        d2 /= np.linalg.norm(d2)
        # ~104.5 degree HOH angle
        h2_dir = np.cos(np.deg2rad(104.5)) * d1 + np.sin(np.deg2rad(104.5)) * d2
        positions[o + 1] = positions[o] + r_oh * d1
        positions[o + 2] = positions[o] + r_oh * h2_dir
        bonds[2 * m] = (o, o + 1)
        bonds[2 * m + 1] = (o, o + 2)

    masses = np.tile([15.999, 1.008, 1.008], molecules)
    charges = np.tile([-0.834, 0.417, 0.417], molecules)
    lj_eps = np.tile([0.1521, 0.0, 0.0], molecules)
    lj_sig = np.tile([3.1507, 1.0, 1.0], molecules)
    # One H-O-H angle per molecule (vertex at the oxygen).
    angle_list = np.array(
        [[3 * m + 1, 3 * m, 3 * m + 2] for m in range(molecules)],
        dtype=np.int64,
    )
    system = ChemicalSystem(
        positions=positions % box,
        velocities=_thermal_velocities(rng, masses, temperature_k),
        masses=masses,
        charges=charges,
        lj_epsilon=lj_eps,
        lj_sigma=lj_sig,
        bonds=bonds,
        bond_r0=np.full(2 * molecules, r_oh),
        bond_k=np.full(2 * molecules, 450.0),
        box_edge=box,
        name=f"water{molecules}",
        angles=angle_list,
        angle_theta0=np.full(molecules, np.deg2rad(104.5)),
        angle_k=np.full(molecules, 55.0),
    )
    return system


def synthetic_dhfr(
    atoms: int = 23_558,
    protein_fraction: float = 0.107,
    temperature_k: float = 300.0,
    seed: int = 0,
) -> ChemicalSystem:
    """A DHFR-scale solvated-protein stand-in (Table 3 caption).

    Real DHFR has ~2,500 protein atoms in ~21,000 atoms of water.  The
    stand-in places a dense bonded blob ("protein") at the box centre,
    fills the rest with 3-site water, and matches the benchmark's atom
    count and density.  Bond density: water contributes 2 bonds per 3
    atoms; the protein blob ~1.05 bonds per atom (chain + crosslinks).
    """
    if atoms < 100:
        raise ValueError("a DHFR-scale builder needs at least 100 atoms")
    rng = np.random.default_rng(seed)
    box = (atoms / WATER_ATOM_DENSITY) ** (1.0 / 3.0)
    n_protein = int(atoms * protein_fraction)
    n_water_mols = (atoms - n_protein) // 3
    n_water = 3 * n_water_mols
    n_protein = atoms - n_water  # absorb rounding

    # Protein blob: uniform points in a sphere at realistic protein
    # atom density (~0.11 atoms/Å³, close to water), ordered along a
    # greedy nearest-neighbour path so that chain bonds are spatially
    # local — uniform fill *and* local bonds both matter for the
    # bond-program communication statistics.
    centre = np.full(3, box / 2.0)
    radius = (3 * n_protein / (4 * np.pi * 0.11)) ** (1.0 / 3.0)
    raw = rng.normal(size=(n_protein, 3))
    raw /= np.linalg.norm(raw, axis=1, keepdims=True)
    raw *= radius * rng.uniform(0.0, 1.0, size=(n_protein, 1)) ** (1.0 / 3.0)
    order = _greedy_chain_order(raw)
    protein_pos = centre + raw[order]
    chain = np.column_stack([np.arange(n_protein - 1), np.arange(1, n_protein)])
    n_cross = max(0, int(0.05 * n_protein))
    cross_a = rng.integers(0, n_protein, size=n_cross)
    cross_b = np.clip(cross_a + rng.integers(2, 12, size=n_cross), 0, n_protein - 1)
    keep = cross_a != cross_b
    crosslinks = np.column_stack([cross_a[keep], cross_b[keep]])
    protein_bonds = np.vstack([chain, crosslinks]) if len(crosslinks) else chain

    # Water fills the box on a jittered lattice; molecules that landed
    # inside the blob are relocated by rejection sampling so the water
    # density stays uniform outside the protein.
    water = bulk_water(molecules=max(n_water_mols, 1), seed=seed + 1)
    scale = box / water.box_edge
    water_pos = water.positions * scale
    d = water_pos[0::3] - centre
    inside = np.nonzero(np.linalg.norm(d, axis=1) < radius + 1.0)[0]
    for mol in inside:
        for _ in range(200):
            candidate = rng.uniform(0.0, box, size=3)
            if np.linalg.norm(candidate - centre) >= radius + 1.0:
                break
        offset = candidate - water_pos[3 * mol]
        water_pos[3 * mol: 3 * mol + 3] += offset
    water_bonds = water.bonds + n_protein

    positions = np.vstack([protein_pos, water_pos]) % box
    masses = np.concatenate([np.full(n_protein, 12.5), water.masses])
    charges = np.concatenate(
        [rng.uniform(-0.4, 0.4, size=n_protein), water.charges]
    )
    charges -= charges.mean()  # neutral system for the Ewald sum
    lj_eps = np.concatenate([np.full(n_protein, 0.1), water.lj_epsilon])
    lj_sig = np.concatenate([np.full(n_protein, 3.4), water.lj_sigma])
    bonds = np.vstack([protein_bonds, water_bonds]).astype(np.int64)
    bond_r0 = np.concatenate(
        [np.full(len(protein_bonds), 1.5), water.bond_r0]
    )
    bond_k = np.concatenate(
        [np.full(len(protein_bonds), 300.0), water.bond_k]
    )
    # Angles: consecutive chain triples in the protein + water HOH.
    if n_protein >= 3:
        protein_angles = np.column_stack(
            [np.arange(n_protein - 2), np.arange(1, n_protein - 1),
             np.arange(2, n_protein)]
        )
    else:
        protein_angles = np.empty((0, 3), dtype=np.int64)
    water_angles = water.angles + n_protein
    angle_list = np.vstack([protein_angles, water_angles]).astype(np.int64)
    angle_theta0 = np.concatenate(
        [np.full(len(protein_angles), np.deg2rad(111.0)), water.angle_theta0]
    )
    angle_k = np.concatenate(
        [np.full(len(protein_angles), 40.0), water.angle_k]
    )
    return ChemicalSystem(
        positions=positions,
        velocities=_thermal_velocities(rng, masses, temperature_k),
        masses=masses,
        charges=charges,
        lj_epsilon=lj_eps,
        lj_sigma=lj_sig,
        bonds=bonds,
        bond_r0=bond_r0,
        bond_k=bond_k,
        box_edge=box,
        name=f"synthetic-dhfr-{atoms}",
        angles=angle_list,
        angle_theta0=angle_theta0,
        angle_k=angle_k,
    )


def tiny_system(atoms: int = 24, seed: int = 0, box_edge: float = 12.0) -> ChemicalSystem:
    """A minimal LJ/charge system for unit tests (fast, well-behaved)."""
    rng = np.random.default_rng(seed)
    per_edge = int(np.ceil(atoms ** (1.0 / 3.0)))
    spacing = box_edge / per_edge
    pos = []
    for i in range(per_edge):
        for j in range(per_edge):
            for k in range(per_edge):
                if len(pos) < atoms:
                    pos.append((np.array([i, j, k]) + 0.5) * spacing)
    positions = np.array(pos) + rng.normal(scale=0.05, size=(atoms, 3))
    masses = np.full(atoms, 10.0)
    charges = rng.uniform(-0.3, 0.3, size=atoms)
    charges -= charges.mean()
    bonds = np.column_stack([np.arange(0, atoms - 1, 2), np.arange(1, atoms, 2)])
    return ChemicalSystem(
        positions=positions % box_edge,
        velocities=_thermal_velocities(rng, masses, 100.0),
        masses=masses,
        charges=charges,
        lj_epsilon=np.full(atoms, 0.1),
        lj_sigma=np.full(atoms, 2.5),
        bonds=bonds.astype(np.int64),
        bond_r0=np.full(bonds.shape[0], spacing * 0.8),
        bond_k=np.full(bonds.shape[0], 100.0),
        box_edge=box_edge,
        name=f"tiny{atoms}",
    )
