"""Range-limited pairwise forces with cell lists.

Computes the forces the HTIS computes on the real machine: all atom
pairs within the cutoff radius (van der Waals + short-range Ewald
electrostatics).  The implementation follows the classic linked-cell
scheme, fully vectorised per cell pair: with cell edge ≥ cutoff only
the 26 neighbouring cells (13 by symmetry) plus the home cell need
examining.

Also computes the virial (needed by the barostat dataflow in Fig. 2)
and, for the machine model, the pair count statistics that drive HTIS
pipeline occupancy.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Optional

import numpy as np

from repro.md.forcefield import ForceField
from repro.md.system import ChemicalSystem

#: The 13 half-shell neighbour offsets (plus self handled separately).
_HALF_SHELL = [
    off
    for off in product((-1, 0, 1), repeat=3)
    if off > (0, 0, 0)
]


class CellList:
    """Linked-cell spatial binning of atoms in a periodic cubic box."""

    def __init__(self, positions: np.ndarray, box_edge: float, cutoff: float) -> None:
        if cutoff <= 0:
            raise ValueError("cutoff must be positive")
        if cutoff * 2 > box_edge:
            # With fewer than 2 cells per edge the half-shell walk
            # would double-count; fall back to one cell (brute force).
            self.cells_per_edge = 1
        else:
            self.cells_per_edge = max(1, int(box_edge / cutoff))
        self.box_edge = box_edge
        self.cell_edge = box_edge / self.cells_per_edge
        n = self.cells_per_edge
        idx = np.floor(positions / self.cell_edge).astype(np.int64) % n
        self.cell_of_atom = idx[:, 0] + n * (idx[:, 1] + n * idx[:, 2])
        order = np.argsort(self.cell_of_atom, kind="stable")
        self.sorted_atoms = order
        counts = np.bincount(self.cell_of_atom, minlength=n ** 3)
        self.cell_start = np.concatenate([[0], np.cumsum(counts)])

    def atoms_in(self, cx: int, cy: int, cz: int) -> np.ndarray:
        """Atom indices in the cell at integer coordinates (wrapped)."""
        n = self.cells_per_edge
        c = (cx % n) + n * ((cy % n) + n * (cz % n))
        return self.sorted_atoms[self.cell_start[c]: self.cell_start[c + 1]]

    def cell_coords(self):
        n = self.cells_per_edge
        return product(range(n), range(n), range(n))


@dataclass
class RangeLimitedResult:
    """Forces plus the scalars the integrator and machine model need."""

    forces: np.ndarray
    energy: float
    virial: float
    pair_count: int


def _accumulate_pairs(
    system: ChemicalSystem,
    ff: ForceField,
    idx_i: np.ndarray,
    idx_j: np.ndarray,
    forces: np.ndarray,
) -> tuple[float, float, int]:
    """Evaluate the candidate pairs (i, j); returns (energy, virial, pairs)."""
    if idx_i.size == 0:
        return 0.0, 0.0, 0
    dr = system.positions[idx_i] - system.positions[idx_j]
    dr = system.minimum_image(dr)
    r2 = np.einsum("ij,ij->i", dr, dr)
    mask = (r2 < ff.cutoff ** 2) & (r2 > 1e-12)
    if not mask.any():
        return 0.0, 0.0, 0
    idx_i, idx_j, dr, r2 = idx_i[mask], idx_j[mask], dr[mask], r2[mask]
    r = np.sqrt(r2)
    eps, sig = ff.combine_lj(
        system.lj_epsilon[idx_i],
        system.lj_epsilon[idx_j],
        system.lj_sigma[idx_i],
        system.lj_sigma[idx_j],
    )
    qq = system.charges[idx_i] * system.charges[idx_j]
    energy, f_over_r = ff.pair_energy_force(r, eps, sig, qq)
    fvec = dr * f_over_r[:, None]
    np.add.at(forces, idx_i, fvec)
    np.subtract.at(forces, idx_j, fvec)
    virial = float(np.sum(f_over_r * r2))
    return float(energy.sum()), virial, int(idx_i.size)


def range_limited_forces(
    system: ChemicalSystem,
    ff: ForceField,
    cell_list: Optional[CellList] = None,
) -> RangeLimitedResult:
    """All-pairs-within-cutoff forces via cell lists.

    A brute-force ``O(n²)`` path is used automatically when the box is
    too small for cells (also the reference the tests compare against).
    """
    n = system.num_atoms
    forces = np.zeros((n, 3))
    cl = cell_list or CellList(system.positions, system.box_edge, ff.cutoff)

    if cl.cells_per_edge < 3:
        # Brute force with half-pair enumeration.
        idx_i, idx_j = np.triu_indices(n, k=1)
        e, w, p = _accumulate_pairs(system, ff, idx_i, idx_j, forces)
        return RangeLimitedResult(forces, e, w, p)

    energy = 0.0
    virial = 0.0
    pairs = 0
    for cx, cy, cz in cl.cell_coords():
        home = cl.atoms_in(cx, cy, cz)
        if home.size == 0:
            continue
        # Intra-cell half pairs.
        if home.size > 1:
            ii, jj = np.triu_indices(home.size, k=1)
            e, w, p = _accumulate_pairs(system, ff, home[ii], home[jj], forces)
            energy += e
            virial += w
            pairs += p
        # Half-shell neighbour cells.
        for ox, oy, oz in _HALF_SHELL:
            other = cl.atoms_in(cx + ox, cy + oy, cz + oz)
            if other.size == 0:
                continue
            ii = np.repeat(home, other.size)
            jj = np.tile(other, home.size)
            e, w, p = _accumulate_pairs(system, ff, ii, jj, forces)
            energy += e
            virial += w
            pairs += p
    return RangeLimitedResult(forces, energy, virial, pairs)
