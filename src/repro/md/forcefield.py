"""Force-field kernels: Lennard-Jones + Ewald-split electrostatics.

Anton expresses the non-bonded forces as a sum of *range-limited*
interactions (van der Waals plus the short-range part of
electrostatics) and *long-range* interactions computed with an
FFT-based convolution (§II).  The split here is the classical Ewald
``erfc`` split — the same family as the Gaussian split Ewald method
Anton uses [39]:

* range-limited pair energy:
  ``4ε[(σ/r)^12 − (σ/r)^6] + q_i q_j erfc(α r)/r``
* long-range (reciprocal) part: handled by
  :mod:`repro.md.longrange` on a charge grid;
* self-energy correction: ``−α/√π Σ q_i²``.

All kernels are vectorised over pair arrays (see the optimization
guidance: vectorise the inner loops, avoid Python-level pair loops).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Coulomb constant in kcal·Å/(mol·e²).
COULOMB = 332.0637


def _erfc(x: np.ndarray) -> np.ndarray:
    """Complementary error function (vectorised).

    Uses the Abramowitz–Stegun 7.1.26 rational approximation (max abs
    error 1.5e-7), so the package keeps NumPy as its only hard
    dependency; tests cross-check against ``scipy.special.erfc``.
    """
    x = np.asarray(x, dtype=np.float64)
    sign = np.where(x >= 0, 1.0, -1.0)
    ax = np.abs(x)
    t = 1.0 / (1.0 + 0.3275911 * ax)
    poly = t * (
        0.254829592
        + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429)))
    )
    y = poly * np.exp(-ax * ax)
    return np.where(sign > 0, y, 2.0 - y)


@dataclass(frozen=True)
class ForceField:
    """Parameters of the non-bonded model.

    Parameters
    ----------
    cutoff:
        Range-limited cutoff radius (Å); the DHFR benchmark uses 13 Å
        class cutoffs.
    ewald_alpha:
        Ewald splitting parameter (1/Å).  Larger α pushes more of the
        Coulomb sum into the grid part.
    shift:
        Shift the pair energy so it is exactly zero at the cutoff
        (forces are unchanged).  Removes the truncation discontinuity
        that would otherwise break NVE energy conservation whenever a
        pair crosses the cutoff.
    """

    cutoff: float = 9.0
    ewald_alpha: float = 0.35
    shift: bool = True

    def __post_init__(self) -> None:
        if self.cutoff <= 0:
            raise ValueError("cutoff must be positive")
        if self.ewald_alpha < 0:
            raise ValueError("ewald_alpha must be >= 0")

    # ------------------------------------------------------------------
    def pair_energy_force(
        self,
        r: np.ndarray,
        eps: np.ndarray,
        sig: np.ndarray,
        qq: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Energy and radial force magnitude for pair distances ``r``.

        Parameters
        ----------
        r:
            Pair distances (must be > 0 and ≤ cutoff for meaningful
            results; the callers mask by cutoff).
        eps, sig:
            Combined pair LJ parameters (Lorentz–Berthelot done by the
            caller: ``eps = sqrt(eps_i eps_j)``, ``sig = (σ_i+σ_j)/2``).
        qq:
            Charge products ``q_i q_j``.

        Returns
        -------
        (energy, f_over_r):
            Per-pair energy and ``F/r`` — the scalar to multiply the
            displacement vector by to get the force on atom *i* from
            atom *j* (positive = repulsive).
        """
        e, f = self._raw_pair(r, eps, sig, qq)
        if self.shift:
            e_rc, _ = self._raw_pair(
                np.full_like(np.asarray(r, dtype=np.float64), self.cutoff),
                eps, sig, qq,
            )
            e = e - e_rc
        return e, f

    def _raw_pair(self, r, eps, sig, qq):
        r = np.asarray(r)
        inv_r = 1.0 / r
        inv_r2 = inv_r * inv_r
        sr2 = (sig * inv_r) ** 2
        sr6 = sr2 * sr2 * sr2
        sr12 = sr6 * sr6
        e_lj = 4.0 * eps * (sr12 - sr6)
        # dE/dr = 4ε(−12 σ^12/r^13 + 6 σ^6/r^7); F/r = −dE/dr / r
        f_lj_over_r = 4.0 * eps * (12.0 * sr12 - 6.0 * sr6) * inv_r2

        alpha = self.ewald_alpha
        if alpha > 0:
            ar = alpha * r
            erfc_ar = _erfc(ar)
            e_coul = COULOMB * qq * erfc_ar * inv_r
            # d/dr [erfc(αr)/r] = −erfc(αr)/r² − 2α/√π e^{−α²r²}/r
            gauss = (2.0 * alpha / np.sqrt(np.pi)) * np.exp(-ar * ar)
            f_coul_over_r = COULOMB * qq * (erfc_ar * inv_r + gauss) * inv_r2
        else:
            e_coul = COULOMB * qq * inv_r
            f_coul_over_r = COULOMB * qq * inv_r * inv_r2
        return e_lj + e_coul, f_lj_over_r + f_coul_over_r

    def self_energy(self, charges: np.ndarray) -> float:
        """Ewald self-energy correction (constant per configuration)."""
        if self.ewald_alpha == 0:
            return 0.0
        return float(
            -COULOMB * self.ewald_alpha / np.sqrt(np.pi) * np.sum(charges ** 2)
        )

    def combine_lj(
        self,
        eps_i: np.ndarray,
        eps_j: np.ndarray,
        sig_i: np.ndarray,
        sig_j: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Lorentz–Berthelot combination rules."""
        return np.sqrt(eps_i * eps_j), 0.5 * (sig_i + sig_j)
