"""Bonded (covalent) force terms.

Harmonic bonds: ``E = k (r − r₀)²`` per bonded pair.  On Anton these
are evaluated by the geometry cores of the flexible subsystem after the
bond program has brought the two atom positions together on one node
(§IV.B.2); here the kernel is a single vectorised pass, and the
machine model consumes the per-node term counts.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.md.system import ChemicalSystem


def bond_energy_forces(
    system: ChemicalSystem,
    subset: Optional[np.ndarray] = None,
) -> tuple[float, np.ndarray]:
    """Energy and forces of (a subset of) the harmonic bonds.

    Parameters
    ----------
    subset:
        Bond indices to evaluate (default: all).  The machine model
        evaluates per-node subsets according to the bond program.

    Returns
    -------
    (energy, forces):
        Total bond energy and an ``(n_atoms, 3)`` force array (zero for
        uninvolved atoms).
    """
    forces = np.zeros_like(system.positions)
    if system.num_bonds == 0:
        return 0.0, forces
    bonds = system.bonds if subset is None else system.bonds[subset]
    r0 = system.bond_r0 if subset is None else system.bond_r0[subset]
    k = system.bond_k if subset is None else system.bond_k[subset]
    if bonds.shape[0] == 0:
        return 0.0, forces
    i, j = bonds[:, 0], bonds[:, 1]
    dr = system.minimum_image(system.positions[i] - system.positions[j])
    r = np.linalg.norm(dr, axis=1)
    stretch = r - r0
    energy = float(np.sum(k * stretch ** 2))
    # F_i = −dE/dr_i = −2k(r − r0) · dr/r
    with np.errstate(invalid="ignore", divide="ignore"):
        f_over_r = np.where(r > 1e-12, -2.0 * k * stretch / r, 0.0)
    fvec = dr * f_over_r[:, None]
    np.add.at(forces, i, fvec)
    np.subtract.at(forces, j, fvec)
    return energy, forces


def angle_energy_forces(
    system: ChemicalSystem,
    subset: Optional[np.ndarray] = None,
) -> tuple[float, np.ndarray]:
    """Energy and forces of (a subset of) the harmonic angle terms.

    ``E = k (θ − θ₀)²`` per (i, j, k) triple with vertex j.  The
    gradient follows the standard decomposition: the force on the
    outer atoms is perpendicular to their bond vectors, and the vertex
    absorbs the remainder (so ΣF = 0 exactly).
    """
    forces = np.zeros_like(system.positions)
    if system.num_angles == 0:
        return 0.0, forces
    angles = system.angles if subset is None else system.angles[subset]
    theta0 = system.angle_theta0 if subset is None else system.angle_theta0[subset]
    k = system.angle_k if subset is None else system.angle_k[subset]
    if angles.shape[0] == 0:
        return 0.0, forces
    ai, aj, ak = angles[:, 0], angles[:, 1], angles[:, 2]
    rij = system.minimum_image(system.positions[ai] - system.positions[aj])
    rkj = system.minimum_image(system.positions[ak] - system.positions[aj])
    nij = np.linalg.norm(rij, axis=1)
    nkj = np.linalg.norm(rkj, axis=1)
    cos_t = np.einsum("ij,ij->i", rij, rkj) / np.maximum(nij * nkj, 1e-12)
    cos_t = np.clip(cos_t, -1.0 + 1e-12, 1.0 - 1e-12)
    theta = np.arccos(cos_t)
    dtheta = theta - theta0
    energy = float(np.sum(k * dtheta ** 2))
    # dE/dθ = 2k(θ−θ0); dθ/dcosθ = −1/sinθ.
    sin_t = np.sqrt(1.0 - cos_t ** 2)
    dE_dcos = -2.0 * k * dtheta / np.maximum(sin_t, 1e-12)
    # ∇_i cosθ = (r_kj/|r_kj| − cosθ · r_ij/|r_ij|) / |r_ij|, and
    # symmetrically for k; the vertex takes −(F_i + F_k).
    uij = rij / nij[:, None]
    ukj = rkj / nkj[:, None]
    gi = (ukj - cos_t[:, None] * uij) / nij[:, None]
    gk = (uij - cos_t[:, None] * ukj) / nkj[:, None]
    fi = -dE_dcos[:, None] * gi
    fk = -dE_dcos[:, None] * gk
    np.add.at(forces, ai, fi)
    np.add.at(forces, ak, fk)
    np.add.at(forces, aj, -(fi + fk))
    return energy, forces


def bonded_energy_forces(
    system: ChemicalSystem,
    bond_subset: Optional[np.ndarray] = None,
    angle_subset: Optional[np.ndarray] = None,
) -> tuple[float, np.ndarray]:
    """All bonded terms (bonds + angles) in one call."""
    e_b, f_b = bond_energy_forces(system, subset=bond_subset)
    e_a, f_a = angle_energy_forces(system, subset=angle_subset)
    return e_b + e_a, f_b + f_a


def bond_lengths(system: ChemicalSystem) -> np.ndarray:
    """Current bond lengths (diagnostics and property tests)."""
    if system.num_bonds == 0:
        return np.empty(0)
    i, j = system.bonds[:, 0], system.bonds[:, 1]
    dr = system.minimum_image(system.positions[i] - system.positions[j])
    return np.linalg.norm(dr, axis=1)
