"""Velocity-Verlet integration with optional temperature control.

On Anton integration runs in the flexible subsystem: each node updates
the positions and velocities of the atoms in its home box (§II).  In
simulations with a thermostat, a global all-reduce computes the kinetic
energy used to rescale velocities (Fig. 2) — that all-reduce is the
Table 3 "thermostat" row.  The numerics here are standard; the machine
model charges their cost to the geometry cores.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from repro.md.bonded import bonded_energy_forces
from repro.md.forcefield import ForceField
from repro.md.longrange import LongRangeSolver
from repro.md.rangelimited import range_limited_forces
from repro.md.system import KB, ChemicalSystem


def kinetic_energy(system: ChemicalSystem) -> float:
    """Total kinetic energy, kcal/mol."""
    return 0.5 * float(
        np.sum(system.masses[:, None] * system.velocities ** 2)
    )


def temperature(system: ChemicalSystem) -> float:
    """Instantaneous temperature from equipartition, Kelvin."""
    dof = 3 * system.num_atoms - 3  # net momentum removed
    return 2.0 * kinetic_energy(system) / (dof * KB)


@dataclass
class StepEnergies:
    """Per-step energy report."""

    kinetic: float
    range_limited: float
    bonded: float
    long_range: float
    self_energy: float
    #: pair virial W = Σ F·r of the range-limited interactions — the
    #: quantity the Fig. 2 all-reduce carries for pressure control
    virial: float = 0.0

    @property
    def potential(self) -> float:
        return self.range_limited + self.bonded + self.long_range + self.self_energy

    @property
    def total(self) -> float:
        return self.kinetic + self.potential


class Integrator:
    """Velocity Verlet with a Berendsen thermostat.

    Parameters
    ----------
    ff:
        Non-bonded parameters.
    dt:
        Time step in internal units (1 unit ≈ 48.89 fs / √scale; the
        defaults conserve energy on the test systems).
    long_range:
        Optional grid solver; when ``None`` the reciprocal part is
        skipped (pure range-limited simulation).
    long_range_interval:
        Evaluate the long-range forces every this many steps, reusing
        the previous grid forces in between — Anton runs long-range
        every other time step (Table 3 caption).
    thermostat_tau, target_temperature:
        Berendsen coupling; ``thermostat_tau=None`` disables control
        (NVE).
    barostat_tau, target_pressure:
        Berendsen pressure coupling (the barostat branch of Fig. 2's
        dataflow: the all-reduce carries the virial, and positions and
        the box rescale).  ``barostat_tau=None`` disables it.
        ``target_pressure`` is in kcal/(mol·Å³) ≈ 69,000 atm per unit;
        liquid-water pressures are O(1e-3) in these units.
    """

    def __init__(
        self,
        ff: ForceField,
        dt: float = 0.001,
        long_range: Optional[LongRangeSolver] = None,
        long_range_interval: int = 2,
        thermostat_tau: Optional[float] = None,
        target_temperature: float = 300.0,
        barostat_tau: Optional[float] = None,
        target_pressure: float = 0.0,
    ) -> None:
        if dt <= 0:
            raise ValueError("dt must be positive")
        if long_range_interval < 1:
            raise ValueError("long_range_interval must be >= 1")
        self.ff = ff
        self.dt = dt
        self.long_range = long_range
        self.long_range_interval = long_range_interval
        self.thermostat_tau = thermostat_tau
        self.target_temperature = target_temperature
        self.barostat_tau = barostat_tau
        self.target_pressure = target_pressure
        self.step_count = 0
        self._cached_lr_forces: Optional[np.ndarray] = None
        self._cached_lr_energy = 0.0

    # ------------------------------------------------------------------
    def compute_forces(self, system: ChemicalSystem) -> tuple[np.ndarray, StepEnergies]:
        """All forces + energy report for the current configuration."""
        rl = range_limited_forces(system, self.ff)
        e_bond, f_bond = bonded_energy_forces(system)
        forces = rl.forces + f_bond
        e_lr = 0.0
        if self.long_range is not None:
            if (
                self.step_count % self.long_range_interval == 0
                or self._cached_lr_forces is None
            ):
                lr = self.long_range.solve(system, self.ff)
                self._cached_lr_forces = lr.forces
                self._cached_lr_energy = lr.energy
            forces = forces + self._cached_lr_forces
            e_lr = self._cached_lr_energy
        energies = StepEnergies(
            kinetic=kinetic_energy(system),
            range_limited=rl.energy,
            bonded=e_bond,
            long_range=e_lr,
            self_energy=self.ff.self_energy(system.charges)
            if self.long_range is not None
            else 0.0,
            virial=rl.virial,
        )
        return forces, energies

    def step(
        self, system: ChemicalSystem, forces: Optional[np.ndarray] = None
    ) -> tuple[np.ndarray, StepEnergies]:
        """Advance one velocity-Verlet step in place.

        Returns the forces at the *new* positions (pass them back in to
        avoid recomputation) and the energy report.
        """
        if forces is None:
            forces, _ = self.compute_forces(system)
        dt = self.dt
        inv_m = 1.0 / system.masses[:, None]
        system.velocities += 0.5 * dt * forces * inv_m
        system.positions += dt * system.velocities
        system.wrap()
        self.step_count += 1
        new_forces, energies = self.compute_forces(system)
        system.velocities += 0.5 * dt * new_forces * inv_m
        if self.thermostat_tau is not None:
            self._berendsen(system)
        if self.barostat_tau is not None:
            self._berendsen_barostat(system, energies.virial)
        energies.kinetic = kinetic_energy(system)
        return new_forces, energies

    def _berendsen(self, system: ChemicalSystem) -> None:
        """Berendsen weak-coupling velocity rescale.

        The global temperature needs the machine-wide kinetic energy —
        on Anton this is the Fig. 2 all-reduce.
        """
        t = temperature(system)
        if t <= 0:
            return
        lam2 = 1.0 + (self.dt / self.thermostat_tau) * (
            self.target_temperature / t - 1.0
        )
        system.velocities *= np.sqrt(max(lam2, 0.0))

    def pressure(self, system: ChemicalSystem, virial: float) -> float:
        """Instantaneous pressure, kcal/(mol·Å³).

        ``P = (2·KE + W) / (3V)`` with the pair virial ``W = Σ F·r``.
        """
        return (2.0 * kinetic_energy(system) + virial) / (3.0 * system.volume)

    def _berendsen_barostat(self, system: ChemicalSystem, virial: float) -> None:
        """Berendsen weak pressure coupling: isotropically rescale the
        box and all positions toward the target pressure."""
        p = self.pressure(system, virial)
        mu3 = 1.0 - (self.dt / self.barostat_tau) * (self.target_pressure - p)
        mu = max(0.9, min(1.1, mu3)) ** (1.0 / 3.0)
        system.positions *= mu
        system.box_edge *= mu
        system.wrap()

    def run(self, system: ChemicalSystem, steps: int) -> list[StepEnergies]:
        """Run ``steps`` steps; returns the per-step energy reports."""
        reports = []
        forces: Optional[np.ndarray] = None
        for _ in range(steps):
            forces, energies = self.step(system, forces)
            reports.append(energies)
        return reports
