"""Molecular dynamics: the application Anton exists for (§II).

Two halves live here:

**Physics** (pure NumPy, machine-independent): chemical systems,
force-field kernels (Lennard-Jones + Ewald-split electrostatics),
cell-list range-limited forces, bonded terms, grid-based long-range
forces via FFT, and a velocity-Verlet integrator with a Berendsen
thermostat.  These are real numerics — the physics tests check force
correctness against direct summation and energy conservation.

**Machine mapping** (the paper's subject): spatial decomposition into
home boxes, the bond program (static assignment of bonded terms to
nodes, §IV.B.2), the distributed dimension-ordered FFT communication
pattern (§IV.B.3), and the time-step orchestrator that maps the MD
dataflow of Fig. 2 onto the simulated machine with counted remote
writes, multicast, and the migration protocol.
"""

from repro.md.bonded import bond_energy_forces
from repro.md.bondprogram import BondProgram
from repro.md.decomposition import Decomposition
from repro.md.forcefield import ForceField
from repro.md.integrator import Integrator, kinetic_energy, temperature
from repro.md.longrange import LongRangeSolver
from repro.md.machine import AntonMD
from repro.md.rangelimited import CellList, range_limited_forces
from repro.md.system import ChemicalSystem, bulk_water, synthetic_dhfr, tiny_system

__all__ = [
    "AntonMD",
    "BondProgram",
    "CellList",
    "ChemicalSystem",
    "Decomposition",
    "ForceField",
    "Integrator",
    "LongRangeSolver",
    "bond_energy_forces",
    "bulk_water",
    "kinetic_energy",
    "range_limited_forces",
    "synthetic_dhfr",
    "temperature",
    "tiny_system",
]
