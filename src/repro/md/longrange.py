"""Long-range electrostatics: charge spreading, FFT convolution, force
interpolation (§II, [39]).

The long-range part of the Ewald-split Coulomb sum is evaluated on a
regular grid:

1. **charge spreading** — each atom's charge is spread to nearby grid
   points with a cardinal B-spline kernel (on Anton: Gaussian
   spreading on the HTIS; the kernel choice does not change any
   communication count, since both spread to a fixed ``w³`` support);
2. **FFT-based convolution** — forward 3-D FFT of the charge grid,
   multiplication by the deconvolved reciprocal-space influence
   function ``4π/k² · exp(−k²/4α²) / |B(k)|²``, inverse FFT to get the
   potential grid (on Anton: the distributed dimension-ordered FFT of
   §IV.B.3);
3. **force interpolation** — analytic differentiation of the spreading
   weights (the smooth-PME scheme): because the discrete energy
   depends on an atom's position only through its weights, the
   interpolated force is the *exact* negative gradient of the discrete
   energy, which the tests verify to machine precision.

This implementation is the *numerical* reference: a serial NumPy
version whose results feed the physics tests.  The *communication* of
the same dataflow is modelled by :mod:`repro.md.fft` +
:mod:`repro.md.machine` on the simulated machine; grid shapes and
per-node point counts there are derived from this solver's geometry,
so timing model and numerics cannot drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.md.forcefield import COULOMB, ForceField
from repro.md.system import ChemicalSystem


def _bspline_weights(t: np.ndarray, order: int) -> tuple[np.ndarray, np.ndarray]:
    """Cardinal B-spline weights and derivatives at offsets ``t``.

    ``t``: (n,) fractional parts in [0, 1).  Returns ``(w, dw)`` of
    shape (n, order): the weights of grid points
    ``floor(u) - order + 1 + j`` for ``j = 0..order-1`` and their
    derivatives with respect to ``u``.  Uses the Cox–de Boor recursion;
    weights sum to exactly 1 (partition of unity).
    """
    n = t.shape[0]
    # M_2 at the arguments u_j = t + (order - 1 - j) for j = 0..order-1
    # evaluated through the recursion on a (n, order) table.
    u = t[:, None] + np.arange(order - 1, -1, -1)[None, :]
    m = np.maximum(0.0, 1.0 - np.abs(u - 1.0))  # M_2
    dm = np.zeros_like(m)
    for k in range(3, order + 1):
        dm = m - _shift(m)
        m = (u * m + (k - u) * _shift(m)) / (k - 1)
    if order == 2:
        # Right-derivative convention at the inner knots, left-derivative
        # at the support's right edge (u = 2, reachable only through
        # float rounding of t + 1): the derivative sum stays exactly
        # zero for every fractional offset.
        dm = np.where(
            (u >= 0) & (u < 1), 1.0, np.where((u >= 1) & (u <= 2), -1.0, 0.0)
        )
    return m, dm


def _shift(m: np.ndarray) -> np.ndarray:
    """M(u-1) for a table whose columns step u by -1."""
    out = np.zeros_like(m)
    out[:, :-1] = m[:, 1:]
    return out


def _bspline_ft_sq(order: int, grid: int) -> np.ndarray:
    """|B(k)|² of the order-``order`` cardinal B-spline on ``grid`` points.

    The standard smooth-PME Euler-spline factor:
    ``B(m) ∝ Σ_{j=0}^{order-2} M_order(j+1) e^{2πi m j / grid}``.
    """
    j = np.arange(order - 1)
    # M_order at integer arguments 1..order-1 via the recursion.
    vals = np.array([_m_at_integer(order, int(x)) for x in (j + 1)])
    k = np.arange(grid)
    phase = np.exp(2j * np.pi * np.outer(k, j) / grid)
    b = phase @ vals
    return np.abs(b) ** 2


def _m_at_integer(order: int, x: int) -> float:
    """M_order evaluated at an integer point (scalar Cox-de Boor)."""
    def m_rec(n: int, v: float) -> float:
        if n == 2:
            return max(0.0, 1.0 - abs(v - 1.0))
        return (v * m_rec(n - 1, v) + (n - v) * m_rec(n - 1, v - 1.0)) / (n - 1)

    return m_rec(order, float(x))


@dataclass
class LongRangeResult:
    """Outcome of one long-range evaluation."""

    forces: np.ndarray
    energy: float
    potential_grid: np.ndarray
    charge_grid: np.ndarray


class LongRangeSolver:
    """Grid-based reciprocal-space Ewald solver (smooth-PME style).

    Parameters
    ----------
    grid_points:
        Grid resolution per dimension (Anton's DHFR runs use 32³).
    spread_width:
        B-spline interpolation order = support points per dimension
        (4 is the common choice; each atom touches ``spread_width³``
        grid points, the figure the machine model's charge-packet
        counts use).
    """

    def __init__(self, grid_points: int = 32, spread_width: int = 4) -> None:
        if grid_points < 4:
            raise ValueError("grid must be at least 4 points per edge")
        if not 2 <= spread_width <= 8:
            raise ValueError("spread_width must be in 2..8")
        self.grid_points = grid_points
        self.spread_width = spread_width

    # ------------------------------------------------------------------
    def influence_function(self, box_edge: float, alpha: float) -> np.ndarray:
        """Reciprocal-space influence function on the FFT grid
        (without the B-spline deconvolution)."""
        n = self.grid_points
        k1d = 2.0 * np.pi * np.fft.fftfreq(n, d=box_edge / n)
        kx, ky, kz = np.meshgrid(k1d, k1d, k1d, indexing="ij")
        k2 = kx ** 2 + ky ** 2 + kz ** 2
        with np.errstate(divide="ignore", invalid="ignore"):
            g = 4.0 * np.pi / k2 * np.exp(-k2 / (4.0 * alpha ** 2))
        g[0, 0, 0] = 0.0  # tin-foil boundary: drop the k=0 term
        return g

    def _weights(self, system: ChemicalSystem):
        """Grid support points, weights, and weight derivatives.

        Returns (pts, w, dw): (n, m, 3) wrapped grid indices, (n, m)
        separable weights, (n, m, 3) ∂w/∂frac per axis, with
        m = spread_width³.
        """
        n = self.grid_points
        order = self.spread_width
        h = system.box_edge / n
        frac = system.positions / h
        base = np.floor(frac).astype(np.int64)
        t = frac - base
        w1, d1 = [], []
        for ax in range(3):
            w_ax, dw_ax = _bspline_weights(t[:, ax], order)
            w1.append(w_ax)
            d1.append(dw_ax)
        # Support offsets per axis: base - order + 1 + j.
        offs = np.arange(order) - order + 1
        pts_ax = [
            (base[:, ax][:, None] + offs[None, :]) % n for ax in range(3)
        ]
        # Tensor products over the cube, flattened to m = order³.
        wx, wy, wz = w1
        dx_, dy_, dz_ = d1
        w = np.einsum("ni,nj,nk->nijk", wx, wy, wz).reshape(len(frac), -1)
        dwx = np.einsum("ni,nj,nk->nijk", dx_, wy, wz).reshape(len(frac), -1)
        dwy = np.einsum("ni,nj,nk->nijk", wx, dy_, wz).reshape(len(frac), -1)
        dwz = np.einsum("ni,nj,nk->nijk", wx, wy, dz_).reshape(len(frac), -1)
        px, py, pz = pts_ax
        big = np.empty((len(frac), order, order, order, 3), dtype=np.int64)
        big[..., 0] = px[:, :, None, None]
        big[..., 1] = py[:, None, :, None]
        big[..., 2] = pz[:, None, None, :]
        pts = big.reshape(len(frac), -1, 3)
        dw = np.stack([dwx, dwy, dwz], axis=-1)
        return pts, w, dw

    def spread_charges(
        self, system: ChemicalSystem
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Spread charges to the grid.

        Returns (charge_grid, points, weights).  The B-spline weights
        sum to exactly 1 per atom, so the grid's total charge equals
        the system's total charge to round-off.
        """
        pts, w, _dw = self._weights(system)
        n = self.grid_points
        grid = np.zeros((n, n, n))
        flat = (pts[..., 0] * n + pts[..., 1]) * n + pts[..., 2]
        np.add.at(grid.ravel(), flat.ravel(), (w * system.charges[:, None]).ravel())
        return grid, pts, w

    def solve(self, system: ChemicalSystem, ff: ForceField) -> LongRangeResult:
        """Full long-range evaluation (spread → FFT → interpolate)."""
        n = self.grid_points
        h = system.box_edge / n
        pts, w, dw = self._weights(system)
        grid = np.zeros((n, n, n))
        flat = (pts[..., 0] * n + pts[..., 1]) * n + pts[..., 2]
        np.add.at(grid.ravel(), flat.ravel(), (w * system.charges[:, None]).ravel())

        rho_k = np.fft.fftn(grid)
        g_k = self.influence_function(system.box_edge, ff.ewald_alpha)
        b1 = _bspline_ft_sq(self.spread_width, n)
        bsq = np.einsum("i,j,k->ijk", b1, b1, b1)
        bsq = np.maximum(bsq, 1e-10)
        # φ_k = ρ_k g_k n³ / (V B²); E = ½ Σ_grid ρ φ then equals the
        # Ewald reciprocal sum (C/2V) Σ g |S(k)|² by Parseval.
        phi_k = rho_k * g_k * (n ** 3 / (system.volume * bsq))
        phi = np.real(np.fft.ifftn(phi_k))

        energy = 0.5 * COULOMB * float(np.sum(grid * phi))

        # Analytic-differentiation forces (see module docstring).
        phi_at = phi.ravel()[flat]
        forces = np.empty_like(system.positions)
        for axis in range(3):
            grad = (phi_at * dw[..., axis]).sum(axis=1) / h
            forces[:, axis] = -COULOMB * system.charges * grad
        return LongRangeResult(
            forces=forces, energy=energy, potential_grid=phi, charge_grid=grid
        )

    # -- statistics for the machine model --------------------------------------
    def points_per_atom(self) -> int:
        """Grid points each atom spreads to / interpolates from."""
        return self.spread_width ** 3

    def grid_points_per_node(self, node_grid: int) -> int:
        """Grid points owned by one node of an ``node_grid³`` machine."""
        if self.grid_points % node_grid:
            raise ValueError(
                f"grid {self.grid_points} does not tile a {node_grid}³ machine"
            )
        return (self.grid_points // node_grid) ** 3
