"""The distributed dimension-ordered 3-D FFT communication plan (§IV.B.3).

Anton implements a dimension-ordered FFT: 1-D FFTs along X, then Y,
then Z (inverse in reverse order), with fine-grained (one grid point
per packet) counted remote writes between the per-dimension phases and
per-dimension synchronization counters.  The specific assignment of
1-D lines to nodes defines both the communication pattern and its
latency [47].

This module computes the *plan*: for each phase, which node owns which
lines, and therefore who sends how many point-packets to whom.  The
line-assignment rule keeps every transfer within the node row of the
active dimension (minimal hops) and spreads lines evenly across the
row (load balance), following the design of [47].
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.topology.torus import NodeCoord, Torus3D

PHASES_FORWARD = ("x", "y", "z")
PHASES_INVERSE = ("z", "y", "x")
_AXIS = {"x": 0, "y": 1, "z": 2}


@dataclass(frozen=True)
class PhaseTransfer:
    """Aggregated point-packets from one node to another in one phase."""

    src: NodeCoord
    dst: NodeCoord
    points: int


class DistributedFFTPlan:
    """Ownership and transfer plan for a ``grid³`` FFT on a torus.

    Parameters
    ----------
    torus:
        Machine topology; each torus extent must divide ``grid``.
    grid:
        FFT grid resolution per dimension (Anton's DHFR runs: 32).

    Notes
    -----
    Initially (and between phases) grid data lives block-distributed:
    node ``(i,j,k)`` owns the ``(grid/nx × grid/ny × grid/nz)`` block
    of points.  In phase *d*, complete lines along *d* are gathered
    onto owner nodes within the same row of nodes along *d*; the owner
    of a line is chosen round-robin along the row.  After the 1-D FFTs
    the data is scattered back to blocks, which doubles as the gather
    of the next phase (the model charges each phase one gather; the
    scatter of phase *d* and gather of phase *d+1* coincide, matching
    the paper's "communication occurs between computation for
    different dimensions").
    """

    def __init__(self, torus: Torus3D, grid: int = 32) -> None:
        for extent, label in zip(torus.shape, "xyz"):
            if grid % extent:
                raise ValueError(
                    f"grid {grid} does not tile the {label} extent {extent}"
                )
        self.torus = torus
        self.grid = grid
        self.block = (
            grid // torus.nx,
            grid // torus.ny,
            grid // torus.nz,
        )
        self._transfer_cache: dict[tuple[str, str], dict] = {}
        self._owned_cache: dict[str, dict] = {}

    # -- ownership ---------------------------------------------------------
    def block_owner(self, px: int, py: int, pz: int) -> NodeCoord:
        """Node owning grid point (px, py, pz) in block distribution."""
        return NodeCoord(
            px // self.block[0], py // self.block[1], pz // self.block[2]
        )

    def line_owner(self, dim: str, a: int, b: int) -> NodeCoord:
        """Node owning the 1-D line along ``dim`` indexed by the two
        orthogonal grid coordinates ``(a, b)``.

        For dim="x": (a, b) = (py, pz).  The owner shares the row of
        the block owners (same orthogonal node coordinates); its
        position along the row interleaves the row's lines by
        ``(a + block_a·b) mod n`` — within one row the local offsets
        ``(a mod block_a) + block_a·(b mod block_b)`` enumerate
        ``block_a·block_b`` *distinct* values, so ownership is exactly
        balanced whenever the row has at least ``n`` lines.
        """
        axis = _AXIS[dim]
        n_along = self.torus.shape[axis]
        if dim == "x":
            oy, oz = a // self.block[1], b // self.block[2]
            along = (a + self.block[1] * b) % n_along
            return NodeCoord(along, oy, oz)
        if dim == "y":
            ox, oz = a // self.block[0], b // self.block[2]
            along = (a + self.block[0] * b) % n_along
            return NodeCoord(ox, along, oz)
        ox, oy = a // self.block[0], b // self.block[1]
        along = (a + self.block[0] * b) % n_along
        return NodeCoord(ox, oy, along)

    def lines_owned(self, node: "NodeCoord | int", dim: str) -> int:
        """Number of 1-D lines the node transforms in phase ``dim``."""
        c = self.torus.coord(node)
        count = 0
        for a, b in self._ortho_indices(dim, c):
            if self.line_owner(dim, a, b) == c:
                count += 1
        return count

    def _ortho_indices(self, dim: str, c: NodeCoord) -> Iterator[tuple[int, int]]:
        """Orthogonal (a, b) grid indices within the node's row."""
        g = self.grid
        if dim == "x":
            ys = range(c.y * self.block[1], (c.y + 1) * self.block[1])
            zs = range(c.z * self.block[2], (c.z + 1) * self.block[2])
            for a in ys:
                for b in zs:
                    yield a, b
        elif dim == "y":
            xs = range(c.x * self.block[0], (c.x + 1) * self.block[0])
            zs = range(c.z * self.block[2], (c.z + 1) * self.block[2])
            for a in xs:
                for b in zs:
                    yield a, b
        else:
            xs = range(c.x * self.block[0], (c.x + 1) * self.block[0])
            ys = range(c.y * self.block[1], (c.y + 1) * self.block[1])
            for a in xs:
                for b in ys:
                    yield a, b

    # -- stage ownership -----------------------------------------------------
    #: The convolution pipeline stages, in dataflow order: block
    #: distribution, forward X/Y/Z line ownership, (convolve at the Z
    #: owners), inverse Y/X line ownership, back to blocks.  Six
    #: inter-stage transfers total (§IV.B.3: "communication occurs
    #: between computation for different dimensions").
    STAGES = ("block", "x", "y", "z", "iy", "ix", "iblock")

    def stage_owner(self, stage: str, px: int, py: int, pz: int) -> NodeCoord:
        """Node owning grid point (px, py, pz) at a pipeline stage."""
        if stage in ("block", "iblock"):
            return self.block_owner(px, py, pz)
        if stage in ("x", "ix"):
            return self.line_owner("x", py, pz)
        if stage in ("y", "iy"):
            return self.line_owner("y", px, pz)
        if stage == "z":
            return self.line_owner("z", px, py)
        raise ValueError(f"unknown stage {stage!r}")

    def stage_transfers(self, stage_from: str, stage_to: str) -> dict[tuple[NodeCoord, NodeCoord], int]:
        """Point counts moved between consecutive stages, per node pair.

        Points whose owner does not change stay local and are excluded.
        Results are cached: the pattern is fixed (§IV.A).
        """
        key = (stage_from, stage_to)
        cached = self._transfer_cache.get(key)
        if cached is not None:
            return cached
        counts: dict[tuple[NodeCoord, NodeCoord], int] = {}
        g = self.grid
        for px in range(g):
            for py in range(g):
                for pz in range(g):
                    a = self.stage_owner(stage_from, px, py, pz)
                    b = self.stage_owner(stage_to, px, py, pz)
                    if a != b:
                        counts[(a, b)] = counts.get((a, b), 0) + 1
        self._transfer_cache[key] = counts
        return counts

    def stage_recv_counts(self, stage_from: str, stage_to: str) -> dict[NodeCoord, int]:
        """Expected packet (point) counts per receiving node."""
        out: dict[NodeCoord, int] = {}
        for (a, b), n in self.stage_transfers(stage_from, stage_to).items():
            out[b] = out.get(b, 0) + n
        return out

    def stage_send_lists(self, stage_from: str, stage_to: str) -> dict[NodeCoord, list[tuple[NodeCoord, int]]]:
        """Outgoing (dst, count) lists per sending node."""
        out: dict[NodeCoord, list[tuple[NodeCoord, int]]] = {}
        for (a, b), n in sorted(
            self.stage_transfers(stage_from, stage_to).items(),
            key=lambda kv: (self.torus.rank(kv[0][0]), self.torus.rank(kv[0][1])),
        ):
            out.setdefault(a, []).append((b, n))
        return out

    def stage_points_owned(self, stage: str) -> dict[NodeCoord, int]:
        """Points owned per node at a stage (1-D FFT work driver)."""
        cached = self._owned_cache.get(stage)
        if cached is not None:
            return cached
        out: dict[NodeCoord, int] = {}
        g = self.grid
        for px in range(g):
            for py in range(g):
                for pz in range(g):
                    o = self.stage_owner(stage, px, py, pz)
                    out[o] = out.get(o, 0) + 1
        self._owned_cache[stage] = out
        return out

    # -- transfers (per-phase convenience API) ---------------------------------
    def phase_sends(self, node: "NodeCoord | int", dim: str) -> list[PhaseTransfer]:
        """This node's outgoing transfers for the gather of phase ``dim``.

        Every point in the node's block belongs to a line; points whose
        line owner is another node are sent there, one grid point per
        packet, aggregated here per destination for bookkeeping.
        """
        c = self.torus.coord(node)
        along_points = self.block[_AXIS[dim]]
        counts: dict[NodeCoord, int] = {}
        for a, b in self._ortho_indices(dim, c):
            owner = self.line_owner(dim, a, b)
            if owner != c:
                counts[owner] = counts.get(owner, 0) + along_points
        return [PhaseTransfer(c, dst, pts) for dst, pts in sorted(
            counts.items(), key=lambda kv: self.torus.rank(kv[0])
        )]

    def phase_recv_points(self, node: "NodeCoord | int", dim: str) -> int:
        """Points this node receives in phase ``dim`` (counter target)."""
        c = self.torus.coord(node)
        n_along = self.torus.shape[_AXIS[dim]]
        own_block_along = self.block[_AXIS[dim]]
        total = 0
        # Each owned line has `grid` points, of which `own_block_along`
        # are already local (this node's own block contribution).
        lines = self.lines_owned(c, dim)
        total = lines * (self.grid - own_block_along)
        return total

    def max_hops(self, dim: str) -> int:
        """Worst-case hops of a phase transfer (within the node row)."""
        return self.torus.shape[_AXIS[dim]] // 2

    def total_points(self) -> int:
        return self.grid ** 3

    def points_per_node(self) -> int:
        return self.block[0] * self.block[1] * self.block[2]
