"""Compute-model calibration for the simulated Anton (Table 3).

The communication side of the model is calibrated from Figs. 5–6; the
*compute* durations below are the arithmetic throughputs of the ASIC's
units, set from the architecture papers ([27, 28]) and tuned so the
total step times land near Table 3's Anton column.  They are plain
data — change them to model a faster or slower ASIC.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AntonCalibration:
    """Arithmetic throughput constants of one ASIC."""

    #: HTIS pairwise-interaction throughput (32 PPIPs @ 800 MHz).
    htis_pairs_per_ns: float = 25.6

    #: HTIS charge-spreading / force-interpolation throughput, in
    #: (atom, grid-point) operations per ns (the same pipelines).
    htis_spread_ops_per_ns: float = 8.0

    #: Geometry-core cost per bonded term (evaluate + accumulate,
    #: averaged over bond and angle terms).
    gc_ns_per_bond_term: float = 38.0

    #: Geometry-core cost to integrate one atom (velocity + position).
    gc_ns_per_atom_update: float = 60.0

    #: Geometry-core cost per grid point of a 1-D FFT pass
    #: (radix butterflies amortised per point).
    gc_ns_per_fft_point: float = 8.0

    #: Geometry-core cost per grid point of the reciprocal-space
    #: multiply (convolution kernel).
    gc_ns_per_convolve_point: float = 2.0

    #: Tensilica cost to compute the node-local kinetic energy before
    #: the thermostat reduction, per atom.
    ts_ns_per_ke_atom: float = 4.0

    #: Worst-case padding factor for fixed packet counts: expected
    #: packet counts are sized for temporal density fluctuations
    #: (§IV.B.1), so buffers hold ``ceil(pad × mean atoms)`` entries.
    density_pad: float = 1.75

    #: Atom-position payload bytes (3 coordinates + atom id).
    position_bytes: int = 32

    #: Force payload bytes per atom (3 components + id).
    force_bytes: int = 24

    #: Grid-point payload bytes (complex value + index).
    grid_point_bytes: int = 16

    #: Atoms per packed force-return packet (≤ 256-byte payload).
    def force_atoms_per_packet(self) -> int:
        return max(1, 256 // self.force_bytes)

    #: Grid points per packed charge/potential packet.
    def grid_points_per_packet(self) -> int:
        return max(1, 256 // 4)  # 4-byte accumulation quantities


DEFAULT_CALIBRATION = AntonCalibration()
