"""The bond program: static assignment of bonded terms to nodes (§IV.B.2).

On each time step the atom positions of every bonded term must be
brought together on one node.  Anton simplifies this by *statically*
assigning bonded terms to nodes, so the set of destinations for a given
atom is fixed: receive memory can be pre-allocated, packet counts are
known, and atoms travel as fine-grained (one atom per packet) counted
remote writes.

The assignment is chosen to minimise communication latency for the
initial placement of atoms (we place each term on the node containing
the bond's midpoint).  As the system evolves and atoms migrate, the
distance between an atom's *current* home node and its bond terms'
nodes grows, and performance degrades over a few hundred thousand
steps — so the program is regenerated every 100,000–200,000 steps
(Fig. 11), in parallel with the simulation, and is therefore somewhat
stale when installed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.md.decomposition import Decomposition
from repro.md.system import ChemicalSystem
from repro.topology.torus import NodeCoord, Torus3D


@dataclass
class BondCommStats:
    """Communication statistics of the current assignment."""

    sends_per_node_mean: float
    sends_per_node_max: int
    hops_mean: float
    hops_max: int
    terms_per_node_max: int

    def __str__(self) -> str:
        return (
            f"bond sends/node mean {self.sends_per_node_mean:.1f} "
            f"max {self.sends_per_node_max}; hops mean {self.hops_mean:.2f} "
            f"max {self.hops_max}"
        )


class BondProgram:
    """Assignment of every bonded term (bonds *and* angles) to a node."""

    def __init__(self, system: ChemicalSystem, decomposition: Decomposition) -> None:
        self.system = system
        self.decomposition = decomposition
        self.torus = decomposition.torus
        #: node grid-index triple per bonded term (bonds then angles)
        self.term_node = np.zeros((system.num_bonded_terms, 3), dtype=np.int64)
        self.generation = 0
        self.regenerate()

    @property
    def num_terms(self) -> int:
        return self.system.num_bonded_terms

    def term_atoms(self, t: int) -> tuple[int, ...]:
        """The atoms participating in term ``t`` (2 for bonds, 3 for
        angles; terms are indexed bonds-first)."""
        nb = self.system.num_bonds
        if t < nb:
            return (int(self.system.bonds[t, 0]), int(self.system.bonds[t, 1]))
        a = self.system.angles[t - nb]
        return (int(a[0]), int(a[1]), int(a[2]))

    def is_angle(self, t: int) -> bool:
        return t >= self.system.num_bonds

    # ------------------------------------------------------------------
    def regenerate(self) -> None:
        """(Re)assign every term to the node holding its midpoint.

        Uses the atoms' *current* positions, so regenerating after the
        system has drifted restores short communication distances —
        the Fig. 11 mechanism.
        """
        system = self.system
        mids = []
        if system.num_bonds:
            i = system.bonds[:, 0]
            j = system.bonds[:, 1]
            ri = system.positions[i]
            d = system.minimum_image(system.positions[j] - ri)
            mids.append((ri + 0.5 * d) % system.box_edge)
        if system.num_angles:
            # Midpoint of an angle term: the centroid, min-image
            # relative to the vertex atom.
            vi = system.positions[system.angles[:, 1]]
            d0 = system.minimum_image(system.positions[system.angles[:, 0]] - vi)
            d2 = system.minimum_image(system.positions[system.angles[:, 2]] - vi)
            mids.append((vi + (d0 + d2) / 3.0) % system.box_edge)
        if mids:
            self.term_node = self.decomposition._grid_of(np.vstack(mids))
        self.generation += 1

    def node_of_term(self, t: int) -> NodeCoord:
        x, y, z = self.term_node[t]
        return NodeCoord(int(x), int(y), int(z))

    def terms_of_node(self, node: "NodeCoord | int") -> np.ndarray:
        c = self.torus.coord(node)
        mask = (
            (self.term_node[:, 0] == c.x)
            & (self.term_node[:, 1] == c.y)
            & (self.term_node[:, 2] == c.z)
        )
        return np.nonzero(mask)[0]

    # -- communication structure -------------------------------------------
    def sends(self) -> dict[NodeCoord, dict[NodeCoord, int]]:
        """Position packets required per (home node → term node) pair.

        An atom participating in terms on *k* distinct remote nodes is
        sent *k* times (one atom per packet, §IV.B.2); duplicate
        (atom, destination) pairs collapse to one packet.
        """
        out: dict[NodeCoord, dict[NodeCoord, int]] = {}
        seen: set[tuple[int, NodeCoord]] = set()
        system = self.system
        for t in range(self.num_terms):
            dst = self.node_of_term(t)
            for atom in self.term_atoms(t):
                src = self.decomposition.node_of_atom(atom)
                if src == dst:
                    continue
                key = (atom, dst)
                if key in seen:
                    continue
                seen.add(key)
                out.setdefault(src, {})[dst] = out.get(src, {}).get(dst, 0) + 1
        return out

    def stats(self) -> BondCommStats:
        """Current communication statistics (drives Fig. 11)."""
        torus = self.torus
        sends = self.sends()
        per_node = []
        hop_list = []
        for src, dsts in sends.items():
            per_node.append(sum(dsts.values()))
            for dst, count in dsts.items():
                hop_list.extend([torus.hops(src, dst)] * count)
        terms_per_node = np.bincount(
            self.term_node[:, 0]
            + torus.nx * (self.term_node[:, 1] + torus.ny * self.term_node[:, 2]),
            minlength=torus.num_nodes,
        )
        return BondCommStats(
            sends_per_node_mean=float(np.mean(per_node)) if per_node else 0.0,
            sends_per_node_max=int(max(per_node)) if per_node else 0,
            hops_mean=float(np.mean(hop_list)) if hop_list else 0.0,
            hops_max=int(max(hop_list)) if hop_list else 0,
            terms_per_node_max=(
                int(terms_per_node.max()) if self.num_terms else 0
            ),
        )
