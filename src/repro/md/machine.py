"""The MD ⇄ machine co-simulation: Fig. 2's dataflow on the model (§IV).

:class:`AntonMD` establishes, before the first step, every fixed
communication pattern of the MD dataflow (§IV.A), then executes time
steps on the simulated machine:

* **positions** — each node's slices multicast home-box atom positions
  to every HTIS in the import region (one atom per packet, fixed
  padded packet counts, §IV.B.1) and unicast them to bonded-term nodes
  (one atom per packet, §IV.B.2);
* **range-limited forces** — the HTIS consumes origin buffers (high-
  priority queue first) and streams partial-force accumulation packets
  back to the home nodes' accumulation memories;
* **bonded forces** — geometry cores evaluate the node's assigned
  terms once their positions arrive, returning forces to the home
  accumulation memories;
* **long-range forces** (every other step) — charge spreading on the
  HTIS, the six-transfer distributed dimension-ordered FFT convolution
  (§IV.B.3), potentials back to the HTIS, force interpolation;
* **integration** — slices poll the force counters, geometry cores
  update positions and velocities;
* **thermostat** (with the long-range step) — the dimension-ordered
  global all-reduce of §IV.B.4;
* **migration** (every N steps) — the FIFO + in-order-flush protocol
  of §IV.B.5.

Two fidelity modes:

``payload_mode=True``
    Packets carry real numbers; distributed forces/energies are
    checked against the serial reference (tests use small machines).
``payload_mode=False``
    Packets carry counts only — same packet counts, same timing —
    used for the 512-node Table 3 / Fig. 11-13 benchmarks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.asic.node import build_machine
from repro.comm.collectives import AllReduce
from repro.comm.migration import MigrationProtocol
from repro.constants import LONG_RANGE_INTERVAL
from repro.engine.simulator import Simulator
from repro.md.calibration import DEFAULT_CALIBRATION, AntonCalibration
from repro.md.decomposition import Decomposition
from repro.md.bondprogram import BondProgram
from repro.md.fft import DistributedFFTPlan
from repro.md.forcefield import ForceField
from repro.md.system import ChemicalSystem
from repro.network.multicast import compile_pattern
from repro.topology.torus import NodeCoord
from repro.trace.recorder import ActivityKind, ActivityRecorder


@dataclass
class StepReport:
    """Timing and accounting of one simulated time step."""

    kind: str  # "range_limited" | "long_range"
    total_ns: float
    phase_spans: dict[str, tuple[float, float]]
    packets_injected: int
    packets_delivered: int

    @property
    def total_us(self) -> float:
        return self.total_ns / 1000.0

    def phase_ns(self, name: str) -> float:
        s, e = self.phase_spans[name]
        return e - s


class AntonMD:
    """One chemical system mapped onto one simulated Anton machine."""

    def __init__(
        self,
        system: ChemicalSystem,
        shape: tuple[int, int, int],
        ff: Optional[ForceField] = None,
        grid: Optional[int] = None,
        calibration: AntonCalibration = DEFAULT_CALIBRATION,
        payload_mode: bool = False,
        slack: float = 0.0,
        import_volume_threshold: Optional[float] = None,
        thermostat: bool = True,
        long_range_interval: int = LONG_RANGE_INTERVAL,
        migration_interval: int = 1,
        recorder: Optional[ActivityRecorder] = None,
        seed: int = 0,
    ) -> None:
        self.system = system
        self.ff = ff or ForceField()
        self.cal = calibration
        self.payload_mode = payload_mode
        self.thermostat = thermostat
        self.long_range_interval = long_range_interval
        self.migration_interval = migration_interval

        self.sim = Simulator()
        self.machine = build_machine(
            self.sim, *shape, htis_pairs_per_ns=calibration.htis_pairs_per_ns, seed=seed
        )
        self.torus = self.machine.torus
        self.recorder = recorder or ActivityRecorder(self.sim)

        if import_volume_threshold is None:
            # Payload mode needs the exact (corner-inclusive) import
            # region for pair-assignment correctness; timing mode uses
            # Anton's clipped region (§IV.B.1's "as many as 17").
            import_volume_threshold = 0.0 if payload_mode else 0.4
        self.decomp = Decomposition(
            system,
            self.torus,
            import_radius=self.ff.cutoff / 2.0,
            slack=slack,
            import_volume_threshold=import_volume_threshold,
        )
        self.bond_program = BondProgram(system, self.decomp)
        self.fft_plan = DistributedFFTPlan(self.torus, grid) if grid else None
        self.allreduce = AllReduce(self.machine, payload_bytes=32, share_locally=False)
        self.migration = MigrationProtocol(self.machine)

        self.step_index = 0
        self._generation_tag = 0
        self._mean_pairs_per_node: Optional[float] = None
        self._setup_import_patterns()
        self._setup_bond_patterns()
        if self.fft_plan is not None:
            self._setup_grid_patterns()

    # ==================================================================
    # fixed pattern establishment (§IV.A)
    # ==================================================================
    @property
    def fixed_atoms_per_node(self) -> int:
        """Padded per-node atom packet count (worst-case density)."""
        mean = self.system.num_atoms / self.torus.num_nodes
        return max(1, math.ceil(self.cal.density_pad * mean))

    def _setup_import_patterns(self) -> None:
        torus = self.torus
        self.import_sets: dict[NodeCoord, list[NodeCoord]] = {}
        self.pos_pattern: dict[NodeCoord, int] = {}
        for n in torus.nodes():
            self.import_sets[n] = self.decomp.import_nodes(n)
        for n in torus.nodes():
            dests = {m: ["htis"] for m in self.import_sets[n]}
            tree = compile_pattern(torus, n, dests)
            self.pos_pattern[n] = self.machine.network.register_pattern(tree)
        # HTIS origin buffers: at node m, one buffer per origin n with
        # m in n's import set; priority for the origins farthest away
        # (their force results travel the longest, §IV.B.1).
        fixed = self.fixed_atoms_per_node
        for m in torus.nodes():
            origins = [n for n in torus.nodes() if m in self.import_sets[n]]
            if not origins:
                continue
            max_hops = max(torus.hops(m, n) for n in origins)
            htis = self.machine.node(m).htis
            for n in origins:
                htis.define_buffer(
                    self._pos_buf(n),
                    n,
                    expected_packets=fixed,
                    priority=(torus.hops(m, n) == max_hops and max_hops > 0),
                )
        self._htis_origins = {
            m: [n for n in torus.nodes() if m in self.import_sets[n]]
            for m in torus.nodes()
        }

    def _setup_bond_patterns(self) -> None:
        """(Re-)establish bond receive buffers and expected counts.

        Called at construction and after every bond-program
        regeneration: receive buffers get a fresh generation-suffixed
        name (pre-allocated memory is never re-addressed, §IV.A).
        """
        self._generation_tag = self.bond_program.generation
        torus = self.torus
        system = self.system
        # (atom, term-node) incoming pairs per node — the fixed count.
        incoming: dict[NodeCoord, list[tuple[int, int]]] = {c: [] for c in torus.nodes()}
        seen: set[tuple[int, NodeCoord]] = set()
        self._atom_term_nodes: dict[int, list[NodeCoord]] = {}
        for t in range(self.bond_program.num_terms):
            dst = self.bond_program.node_of_term(t)
            for atom in self.bond_program.term_atoms(t):
                if (atom, dst) in seen:
                    continue
                seen.add((atom, dst))
                incoming[dst].append((atom, t))
                self._atom_term_nodes.setdefault(atom, []).append(dst)
        self._bond_incoming = {c: len(v) for c, v in incoming.items()}
        buf = self._bond_buf()
        for c in torus.nodes():
            n_slots = max(1, self._bond_incoming[c])
            self.machine.node(c).slices[1].memory.allocate(buf, n_slots)
        # Per-atom slot assignment at each destination (pre-agreed
        # addresses: the sender computes the slot with no coordination).
        self._bond_slot: dict[tuple[int, NodeCoord], int] = {}
        for c, pairs in incoming.items():
            atoms = sorted({a for a, _ in pairs})
            for slot, atom in enumerate(atoms):
                self._bond_slot[(atom, c)] = slot
        # The incoming count is per distinct atom (one packet each).
        self._bond_incoming = {
            c: len({a for a, _ in pairs}) for c, pairs in incoming.items()
        }

    def _setup_grid_patterns(self) -> None:
        """Charge-spread and potential-return counts (fixed: grid
        points do not migrate, §IV.B.1)."""
        plan = self.fft_plan
        torus = self.torus
        g = plan.grid
        h = self.system.box_edge / g
        solver_width = 4  # spread support per side (matches LongRangeSolver)
        reach = (solver_width / 2.0) * h
        w = self.decomp.box_widths
        counts: dict[tuple[NodeCoord, NodeCoord], int] = {}
        shape = torus.shape
        for px in range(g):
            for py in range(g):
                for pz in range(g):
                    owner = plan.block_owner(px, py, pz)
                    pos = (np.array([px, py, pz]) + 0.5) * h
                    lo = np.floor((pos - reach) / w).astype(int)
                    hi = np.floor((pos + reach) / w).astype(int)
                    for bx in range(lo[0], hi[0] + 1):
                        for by in range(lo[1], hi[1] + 1):
                            for bz in range(lo[2], hi[2] + 1):
                                src = torus.wrap(NodeCoord(bx, by, bz))
                                key = (src, owner)
                                counts[key] = counts.get(key, 0) + 1
        self._spread_counts = counts
        ppp = self.cal.grid_points_per_packet()
        self._spread_packets: dict[NodeCoord, list[tuple[NodeCoord, int]]] = {}
        self._spread_expected: dict[NodeCoord, int] = {}
        self._potential_packets: dict[NodeCoord, list[tuple[NodeCoord, int]]] = {}
        self._potential_expected: dict[NodeCoord, int] = {}
        for (src, dst), pts in sorted(
            counts.items(), key=lambda kv: (torus.rank(kv[0][0]), torus.rank(kv[0][1]))
        ):
            pk = math.ceil(pts / ppp)
            self._spread_packets.setdefault(src, []).append((dst, pk))
            self._spread_expected[dst] = self._spread_expected.get(dst, 0) + pk
            # Potentials flow back along the transposed pattern.
            self._potential_packets.setdefault(dst, []).append((src, pk))
            self._potential_expected[src] = self._potential_expected.get(src, 0) + pk
        # FFT inter-stage transfers.
        self._fft_sends = {
            (a, b): plan.stage_send_lists(a, b)
            for a, b in zip(plan.STAGES[:-1], plan.STAGES[1:])
        }
        self._fft_recv = {
            (a, b): plan.stage_recv_counts(a, b)
            for a, b in zip(plan.STAGES[:-1], plan.STAGES[1:])
        }

    # -- name helpers ---------------------------------------------------------
    def _pos_buf(self, origin: NodeCoord) -> str:
        return f"pos-{self.torus.rank(origin)}"

    def _bond_buf(self) -> str:
        return f"bondpos-g{self._generation_tag}"

    def _bond_ctr(self) -> str:
        return f"bondpos-g{self._generation_tag}-s{self.step_index}"

    def _force_ctr(self) -> str:
        return f"forces-s{self.step_index}"

    def _spread_ctr(self) -> str:
        return f"charges-s{self.step_index}"

    def _fft_ctr(self, stage_pair: tuple[str, str]) -> str:
        return f"fft-{stage_pair[0]}-{stage_pair[1]}-s{self.step_index}"

    def _potential_ctr(self) -> str:
        return f"potentials-s{self.step_index}"

    # ==================================================================
    # derived workload statistics
    # ==================================================================
    def mean_pairs_per_node(self) -> float:
        """Range-limited pairs per node (analytic density estimate,
        cached; the timing model's HTIS occupancy driver)."""
        if self._mean_pairs_per_node is None:
            density = self.system.density
            shell = (4.0 / 3.0) * math.pi * self.ff.cutoff ** 3
            total_pairs = self.system.num_atoms * density * shell / 2.0
            self._mean_pairs_per_node = total_pairs / self.torus.num_nodes
        return self._mean_pairs_per_node

    def _bond_return_counts(self) -> dict[NodeCoord, int]:
        """Packed bond-force packets each home node expects this step.

        A term node returns, per home node, the forces of that home's
        atoms it touches, packed ``force_atoms_per_packet`` per packet;
        the count is recomputed after migrations and regenerations (the
        "additional bookkeeping" of §IV.B.5).
        """
        if getattr(self, "_bond_counts_step", None) == self.step_index:
            return self._bond_counts_cache
        fpp = self.cal.force_atoms_per_packet()
        atoms_by_pair: dict[tuple[NodeCoord, NodeCoord], set[int]] = {}
        for t in range(self.bond_program.num_terms):
            tn = self.bond_program.node_of_term(t)
            for atom in self.bond_program.term_atoms(t):
                home = self.decomp.node_of_atom(atom)
                atoms_by_pair.setdefault((tn, home), set()).add(atom)
        counts: dict[NodeCoord, int] = {}
        for (tn, home), atoms in atoms_by_pair.items():
            counts[home] = counts.get(home, 0) + math.ceil(len(atoms) / fpp)
        self._bond_counts_cache = counts
        self._bond_counts_step = self.step_index
        return counts

    def expected_force_packets(self, node: NodeCoord) -> int:
        """Force accumulation packets node's accum0 expects this step."""
        fpp = self.cal.force_atoms_per_packet()
        htis_part = len(self.import_sets[node]) * math.ceil(
            self.fixed_atoms_per_node / fpp
        )
        bond_part = self._bond_return_counts().get(node, 0)
        return htis_part + bond_part

    def expected_lr_force_packets(self, node: NodeCoord) -> int:
        """Long-range force packets (local HTIS interpolation return)."""
        fpp = self.cal.force_atoms_per_packet()
        return math.ceil(self.fixed_atoms_per_node / fpp)

    # ==================================================================
    # step execution
    # ==================================================================
    def step_kind(self, index: Optional[int] = None) -> str:
        """Kind of the upcoming step (1-based; long-range every
        ``long_range_interval``-th step, so step 1 is range-limited
        with the default interval of 2 — the Fig. 13 layout)."""
        i = (self.step_index if index is None else index) + 1
        if self.fft_plan is not None and i % self.long_range_interval == 0:
            return "long_range"
        return "range_limited"

    def run_step(self, kind: Optional[str] = None) -> StepReport:
        """Simulate one MD time step on the machine."""
        if kind is None:
            kind = self.step_kind()
        if kind == "long_range" and self.fft_plan is None:
            raise ValueError("long-range step requested but no FFT grid configured")
        self.step_index += 1
        start = self.sim.now
        self._phase_marks: dict[str, list[float]] = {}
        for m in self.torus.nodes():
            self.machine.node(m).htis.reset_buffers()
        pkts0 = self.machine.network.packets_injected
        dlv0 = self.machine.network.packets_delivered
        from repro.profile.profiler import active_profiler

        prof = active_profiler()
        if prof is not None:
            prof.phase_begin(f"step:{kind}")
        try:
            procs = []
            for n in self.torus.nodes():
                procs.extend(self._spawn_node_step(n, kind))
            self.sim.run(until=self.sim.all_of(procs))
            end = self.sim.now
            if (
                self.migration_interval
                and self.step_index % self.migration_interval == 0
            ):
                self._run_migration()
                end = self.sim.now
        finally:
            if prof is not None:
                prof.phase_end(f"step:{kind}")
        spans = {
            name: (min(marks), max(marks))
            for name, marks in self._phase_marks.items()
        }
        return StepReport(
            kind=kind,
            total_ns=end - start,
            phase_spans=spans,
            packets_injected=self.machine.network.packets_injected - pkts0,
            packets_delivered=self.machine.network.packets_delivered - dlv0,
        )

    def _mark(self, phase: str) -> None:
        self._phase_marks.setdefault(phase, []).append(self.sim.now)

    # ------------------------------------------------------------------
    def regenerate_bond_program(self) -> None:
        """Install a fresh bond program (§IV.B.2, Fig. 11).

        Terms are reassigned from the atoms' *current* positions and
        the receive-side buffers/counts are re-established under a new
        generation tag (old buffers stay allocated — addresses are
        never reused).
        """
        self.bond_program.regenerate()
        self._setup_bond_patterns()

    # ------------------------------------------------------------------
    def run_bond_phase_only(self) -> float:
        """Simulate just the bonded-force communication round.

        Used by the Fig. 11 harness: between bond-program
        regenerations only the bond phase's cost changes (position
        sends to term nodes, term-node waits, force returns), so epoch
        sampling re-simulates this phase alone and reuses the rest of
        the step.  Returns the phase's duration in ns.
        """
        self.step_index += 1
        start = self.sim.now
        self._phase_marks = {}
        done: dict[NodeCoord, float] = {}
        procs = []
        for n in self.torus.nodes():
            procs.append(
                self.sim.process(self._bond_pos_sender(n), name=f"bpos@{n}")
            )
            procs.append(self.sim.process(self._bond_phase(n), name=f"bond@{n}"))
            procs.append(
                self.sim.process(self._bond_force_wait(n, done), name=f"bwait@{n}")
            )
        self.sim.run(until=self.sim.all_of(procs))
        return self.sim.now - start

    def _bond_pos_sender(self, n: NodeCoord):
        atoms = self.decomp.atoms_of(n)
        node = self.machine.node(n)
        pos_bytes = self.cal.position_bytes
        subprocs = []

        def slice_sender(k, my_atoms):
            s = node.slices[k]
            for atom in my_atoms:
                for dst in self._atom_term_nodes.get(atom, []):
                    slot = self._bond_slot[(atom, dst)]
                    yield from s.send_write(
                        dst, "slice1", counter_id=self._bond_ctr(),
                        address=(self._bond_buf(), slot),
                        payload_bytes=pos_bytes,
                    )

        for k in range(4):
            my = [int(a) for a in atoms[k::4]]
            if my:
                subprocs.append(self.sim.process(slice_sender(k, my)))
        if subprocs:
            yield self.sim.all_of(subprocs)

    def _bond_force_wait(self, n: NodeCoord, done: dict):
        node = self.machine.node(n)
        s2 = node.slices[2]
        expected = self._bond_return_counts().get(n, 0)
        if expected:
            yield from s2.poll_accum(node.accum[0], self._force_ctr(), expected)
        done[n] = self.sim.now
        node.accum[0].clear()

    # ------------------------------------------------------------------
    def _spawn_node_step(self, n: NodeCoord, kind: str) -> list:
        procs = [
            self.sim.process(self._position_phase(n), name=f"pos@{n}"),
            self.sim.process(self._htis_phase(n, kind), name=f"htis@{n}"),
            self.sim.process(self._bond_phase(n), name=f"bond@{n}"),
            self.sim.process(self._integrate_phase(n, kind), name=f"integ@{n}"),
        ]
        if kind == "long_range":
            procs.append(self.sim.process(self._fft_phase(n), name=f"fft@{n}"))
        return procs

    # -- phase: position sends ---------------------------------------------
    def _position_phase(self, n: NodeCoord):
        """Slices multicast positions to the HTIS import set and unicast
        them to bonded-term nodes; padded to the fixed packet count."""
        self._mark("positions")
        node = self.machine.node(n)
        atoms = self.decomp.atoms_of(n)
        fixed = self.fixed_atoms_per_node
        if len(atoms) > fixed:
            raise RuntimeError(
                f"node {n} holds {len(atoms)} atoms > fixed packet count "
                f"{fixed}; raise AntonCalibration.density_pad"
            )
        subprocs = []
        for k in range(4):
            my_atoms = [int(a) for a in atoms[k::4]]
            pad = (fixed // 4 + (1 if k < fixed % 4 else 0)) - len(my_atoms)
            subprocs.append(
                self.sim.process(
                    self._position_sender(n, k, my_atoms, pad),
                    name=f"pos@{n}.s{k}",
                )
            )
        yield self.sim.all_of(subprocs)
        self._mark("positions")

    def _position_sender(self, n: NodeCoord, k: int, atoms: list[int], pad: int):
        node = self.machine.node(n)
        s = node.slices[k]
        pid = self.pos_pattern[n]
        pos_bytes = self.cal.position_bytes
        ctr_buf = self._pos_buf(n)
        for atom in atoms:
            payload = (atom, self.system.positions[atom].copy()) if self.payload_mode else None
            yield from s.send_write(
                n, "htis", counter_id=ctr_buf, payload=payload,
                payload_bytes=pos_bytes, pattern_id=pid,
            )
            self.recorder.record_span(f"{n}:ts{k}", ActivityKind.SEND, 36.0, "pos")
            # Bond-term unicasts for this atom (one atom per packet).
            for dst in self._atom_term_nodes.get(atom, []):
                slot = self._bond_slot[(atom, dst)]
                yield from s.send_write(
                    dst, "slice1", counter_id=self._bond_ctr(),
                    address=(self._bond_buf(), slot),
                    payload=payload, payload_bytes=pos_bytes,
                )
                self.recorder.record_span(f"{n}:ts{k}", ActivityKind.SEND, 36.0, "bondpos")
        # Padding packets keep the counted-write contract (§IV.B.1).
        for _ in range(max(0, pad)):
            yield from s.send_write(
                n, "htis", counter_id=ctr_buf, payload=None,
                payload_bytes=pos_bytes, pattern_id=pid,
            )

    # -- phase: HTIS range-limited (+ spreading, interpolation) --------------
    def _htis_phase(self, n: NodeCoord, kind: str):
        self._mark("range_limited")
        node = self.machine.node(n)
        htis = node.htis
        origins = self._htis_origins[n]
        if not origins:
            self._mark("range_limited")
            return
        pairs_here = self._node_pairs(n)
        per_buffer = pairs_here / len(origins)
        order = sorted(
            (self._pos_buf(o) for o in origins),
            key=lambda name: name,
        )
        send_procs: list = []

        def on_done(buf):
            origin = buf.origin
            self.recorder.record_span(
                f"{n}:htis", ActivityKind.COMPUTE,
                htis.pairs_duration_ns(per_buffer), "pairs",
            )
            send_procs.append(
                self.sim.process(
                    self._htis_force_return(n, origin), name=f"fret@{n}"
                )
            )

        if kind == "long_range":
            # Charge spreading needs only this node's own atoms, whose
            # positions arrive first (local multicast delivery), so it
            # runs *before* the range-limited processing — that is how
            # the FFT communication overlaps the range-limited
            # computation in Fig. 13.
            yield htis.counter(self._pos_buf(n)).wait_for(self.fixed_atoms_per_node)
            yield from self._spread_phase(n)
        yield from htis.process_buffers(
            order,
            work_ns=lambda buf: htis.pairs_duration_ns(per_buffer),
            on_done=on_done,
        )
        if send_procs:
            yield self.sim.all_of(send_procs)
        self._mark("range_limited")
        if kind == "long_range":
            yield from self._interpolation_phase(n)

    def _node_pairs(self, n: NodeCoord) -> float:
        if self.payload_mode:
            # Exact per-node pair count via the midpoint rule.
            counts, _partial = self._midpoint_pairs()
            return float(counts.get(n, 0))
        return self.mean_pairs_per_node()

    def _htis_force_return(self, m: NodeCoord, origin: NodeCoord):
        """Partial forces for ``origin``'s buffer stream back to the
        origin node's accumulation memory 0."""
        htis = self.machine.node(m).htis
        fpp = self.cal.force_atoms_per_packet()
        packets = math.ceil(self.fixed_atoms_per_node / fpp)
        payload_of = None
        if self.payload_mode:
            partials = self._midpoint_pairs()[1].get((m, origin), {})
            items = sorted(partials.items())

            def payload_of(i, items=items, fpp=fpp):
                chunk = items[i * fpp: (i + 1) * fpp]
                return [(atom, f.copy()) for atom, f in chunk]

        yield from htis.send_accum_results(
            origin,
            "accum0",
            packets,
            counter_id=self._force_ctr(),
            payload_bytes=min(256, fpp * self.cal.force_bytes),
            address_of=lambda i: ("rl-forces", self.torus.rank(m), i),
            payload_of=payload_of,
        )

    # -- phase: bonded forces ------------------------------------------------
    def _bond_phase(self, n: NodeCoord):
        self._mark("bonded")
        node = self.machine.node(n)
        s = node.slices[1]
        expected = self._bond_incoming[n]
        terms = self.bond_program.terms_of_node(n)
        if expected == 0 and len(terms) == 0:
            self._mark("bonded")
            return
        if expected:
            yield from s.poll(self._bond_ctr(), expected)
        # Evaluate the node's terms on the geometry cores.
        work = len(terms) * self.cal.gc_ns_per_bond_term
        if work:
            half = work / 2.0
            p0 = self.sim.process(s.compute(half, core=0))
            p1 = self.sim.process(s.compute(half, core=1))
            yield self.sim.all_of([p0, p1])
            self.recorder.record_span(f"{n}:gc", ActivityKind.COMPUTE, half, "bonded")
        # Return forces to the involved atoms' home accumulation
        # memories (aggregated per destination, packed packets).
        dest_atoms: dict[NodeCoord, list[int]] = {}
        for t in terms:
            for atom in self.bond_program.term_atoms(int(t)):
                home = self.decomp.node_of_atom(atom)
                dest_atoms.setdefault(home, []).append(atom)
        fpp = self.cal.force_atoms_per_packet()
        bond_forces = self._bond_forces_for(terms) if self.payload_mode else None
        for dst, atoms in sorted(dest_atoms.items(), key=lambda kv: self.torus.rank(kv[0])):
            unique = sorted(set(atoms))
            for i in range(0, len(unique), fpp):
                chunk = unique[i: i + fpp]
                payload = None
                if bond_forces is not None:
                    payload = [(a, bond_forces[a].copy()) for a in chunk]
                yield from s.send_accum(
                    dst, "accum0",
                    counter_id=self._force_ctr(),
                    address=("bond-forces", self.torus.rank(n), i),
                    payload=payload,
                    payload_bytes=min(256, len(chunk) * self.cal.force_bytes),
                )
        self._mark("bonded")

    # -- phase: long-range ------------------------------------------------------
    def _spread_phase(self, n: NodeCoord):
        """HTIS spreads charges; partial grid sums go to the owners'
        accumulation memory 1 (Fig. 9's charge path)."""
        self._mark("fft_convolution")
        node = self.machine.node(n)
        htis = node.htis
        ops = self.fixed_atoms_per_node * 4 ** 3
        dur = ops / self.cal.htis_spread_ops_per_ns
        yield from htis.pipeline.use(dur)
        self.recorder.record_span(f"{n}:htis", ActivityKind.COMPUTE, dur, "spread")
        for dst, pk in self._spread_packets.get(n, []):
            yield from htis.send_accum_results(
                dst, "accum1", pk,
                counter_id=self._spread_ctr(),
                payload_bytes=256,
                address_of=lambda i, src=n: ("charges", self.torus.rank(src), i),
            )

    def _fft_phase(self, n: NodeCoord):
        """The six-transfer dimension-ordered FFT convolution."""
        node = self.machine.node(n)
        s0 = node.slices[0]
        plan = self.fft_plan
        cal = self.cal
        # Wait for the charge grid (accum1 counter), then read it out.
        expected = self._spread_expected.get(n, 0)
        if expected:
            yield from s0.poll_accum(node.accum[1], self._spread_ctr(), expected)
            yield from s0.read_accum_lines(
                math.ceil(plan.points_per_node() * 4 / 32)
            )
        stage_pairs = list(zip(plan.STAGES[:-1], plan.STAGES[1:]))
        self._mark("fft_transfers")
        for idx, pair in enumerate(stage_pairs):
            sends = self._fft_sends[pair].get(n, [])
            recv = self._fft_recv[pair].get(n, 0)
            # Four slices share the point-packet sends.
            senders = []
            chunks = _split_round_robin(sends, 4)
            for k in range(4):
                if chunks[k]:
                    senders.append(
                        self.sim.process(
                            self._fft_sender(n, k, chunks[k], pair),
                            name=f"fftsend@{n}",
                        )
                    )
            if senders:
                yield self.sim.all_of(senders)
            if recv:
                yield from s0.poll(self._fft_ctr(pair), recv)
            # 1-D FFT work (or convolution multiply after stage z).
            stage_to = pair[1]
            owned = plan.stage_points_owned(stage_to).get(n, 0)
            if stage_to in ("x", "y", "z", "iy", "ix"):
                work = owned * cal.gc_ns_per_fft_point
            else:
                work = 0.0
            if stage_to == "z":
                work += owned * cal.gc_ns_per_convolve_point
            if work:
                half = work / 2.0
                p0 = self.sim.process(s0.compute(half, core=0))
                p1 = self.sim.process(s0.compute(half, core=1))
                yield self.sim.all_of([p0, p1])
                self.recorder.record_span(f"{n}:gc", ActivityKind.COMPUTE, half, "fft")
        self._mark("fft_transfers")
        # Potentials travel back to the HTIS units (multicast-like
        # fan-out along the transposed spread pattern).
        for dst, pk in self._potential_packets.get(n, []):
            for i in range(pk):
                yield from s0.send_write(
                    dst, "htis",
                    counter_id=self._potential_ctr(),
                    payload_bytes=256,
                )
        self._mark("fft_convolution")

    def _fft_sender(self, n: NodeCoord, k: int, sends: list[tuple[NodeCoord, int]], pair):
        s = self.machine.node(n).slices[k]
        ctr = self._fft_ctr(pair)
        for dst, pts in sends:
            for _ in range(pts):
                yield from s.send_write(
                    dst, "slice0", counter_id=ctr,
                    payload_bytes=self.cal.grid_point_bytes,
                )

    def _interpolation_phase(self, n: NodeCoord):
        """HTIS interpolates long-range forces once potentials arrive."""
        node = self.machine.node(n)
        htis = node.htis
        s2 = node.slices[2]
        expected = self._potential_expected.get(n, 0)
        if expected:
            yield htis.counter(self._potential_ctr()).wait_for(expected)
        ops = self.fixed_atoms_per_node * 4 ** 3
        dur = ops / self.cal.htis_spread_ops_per_ns
        yield from htis.pipeline.use(dur)
        self.recorder.record_span(f"{n}:htis", ActivityKind.COMPUTE, dur, "interp")
        fpp = self.cal.force_atoms_per_packet()
        packets = math.ceil(self.fixed_atoms_per_node / fpp)
        yield from htis.send_accum_results(
            n, "accum0", packets,
            counter_id=self._force_ctr(),
            payload_bytes=min(256, fpp * self.cal.force_bytes),
            address_of=lambda i: ("lr-forces", i),
        )

    # -- phase: integration + thermostat ------------------------------------------
    def _integrate_phase(self, n: NodeCoord, kind: str):
        self._mark("integration")
        node = self.machine.node(n)
        s2 = node.slices[2]
        expected = self.expected_force_packets(n)
        if kind == "long_range":
            expected += self.expected_lr_force_packets(n)
        yield from s2.poll_accum(node.accum[0], self._force_ctr(), expected)
        atoms = self.decomp.atoms_of(n)
        fpp = self.cal.force_atoms_per_packet()
        yield from s2.read_accum_lines(math.ceil(max(1, len(atoms)) / fpp))
        if self.payload_mode:
            self._apply_forces(n, node, atoms, kind)
        # Velocity (and, without a thermostat, position) update.
        work = max(1, len(atoms)) * self.cal.gc_ns_per_atom_update
        half = work / 2.0
        p0 = self.sim.process(s2.compute(half, core=0))
        p1 = self.sim.process(s2.compute(half, core=1))
        yield self.sim.all_of([p0, p1])
        self.recorder.record_span(f"{n}:gc", ActivityKind.COMPUTE, half, "integrate")
        if self.thermostat and kind == "long_range":
            self._mark("thermostat")
            yield from s2.tensilica_work(
                max(1, len(atoms)) * self.cal.ts_ns_per_ke_atom
            )
            yield from self._thermostat_reduce(n)
            # Adjust temperature and update positions (Fig. 13 tail).
            p0 = self.sim.process(s2.compute(half, core=0))
            p1 = self.sim.process(s2.compute(half, core=1))
            yield self.sim.all_of([p0, p1])
            self._mark("thermostat")
        self._mark("integration")
        node.accum[0].clear()
        node.accum[1].clear()

    def _thermostat_reduce(self, n: NodeCoord):
        """This node's leg of the global kinetic-energy all-reduce."""
        if not hasattr(self, "_reduce_legs") or self._reduce_step != self.step_index:
            # First node to arrive this step spawns all legs.
            self._reduce_step = self.step_index
            values = {c: 0.0 for c in self.torus.nodes()}
            self.allreduce._runs += 1
            self._reduce_done: dict[NodeCoord, float] = {}
            final: dict[NodeCoord, float] = {}
            self._reduce_legs = {}
            for c in self.torus.nodes():
                self._reduce_legs[c] = self.sim.process(
                    self.allreduce._node_process(
                        c, values[c], self._reduce_done, final
                    ),
                    name=f"thermo@{c}",
                )
        yield self._reduce_legs[n]

    # -- migration ------------------------------------------------------------
    def _run_migration(self) -> int:
        """Run the migration protocol for atoms outside their slack."""
        moves = self.decomp.migration_moves()
        payload_moves = {
            src: [(dst, atom) for dst, atom in records]
            for src, records in moves.items()
        }
        counts = self.decomp.atom_counts()
        scan = {
            c: int(counts[self.torus.rank(c)]) for c in self.torus.nodes()
        }
        result = self.migration.run(payload_moves, scan_atoms=scan)
        self.decomp.apply_moves(moves)
        self._mark("migration")
        self._phase_marks.setdefault("migration", []).append(
            self.sim.now - result.elapsed_ns
        )
        return result.messages_sent

    # ==================================================================
    # payload-mode numerics
    # ==================================================================
    def _midpoint_pairs(self):
        """Exact pair assignment by the midpoint rule (payload mode).

        Returns ``(per_node_counts, partial_forces)`` where
        ``partial_forces[(m, origin)]`` maps atom → partial force from
        pairs assigned to node ``m`` involving that atom of ``origin``.
        Cached per step.
        """
        if getattr(self, "_pairs_step", None) == self.step_index:
            return self._pairs_cache

        system = self.system
        n_atoms = system.num_atoms
        idx_i, idx_j = np.triu_indices(n_atoms, k=1)
        dr = system.minimum_image(system.positions[idx_i] - system.positions[idx_j])
        r2 = np.einsum("ij,ij->i", dr, dr)
        mask = (r2 < self.ff.cutoff ** 2) & (r2 > 1e-12)
        idx_i, idx_j, dr, r2 = idx_i[mask], idx_j[mask], dr[mask], r2[mask]
        mid = (system.positions[idx_j] + 0.5 * dr) % system.box_edge
        mid_grid = self.decomp._grid_of(mid)
        r = np.sqrt(r2)
        eps, sig = self.ff.combine_lj(
            system.lj_epsilon[idx_i], system.lj_epsilon[idx_j],
            system.lj_sigma[idx_i], system.lj_sigma[idx_j],
        )
        qq = system.charges[idx_i] * system.charges[idx_j]
        _e, f_over_r = self.ff.pair_energy_force(r, eps, sig, qq)
        fvec = dr * f_over_r[:, None]

        counts: dict[NodeCoord, int] = {}
        partial: dict[tuple[NodeCoord, NodeCoord], dict[int, np.ndarray]] = {}
        for p in range(idx_i.size):
            m = NodeCoord(*map(int, mid_grid[p]))
            counts[m] = counts.get(m, 0) + 1
            i, j = int(idx_i[p]), int(idx_j[p])
            for atom, f in ((i, fvec[p]), (j, -fvec[p])):
                origin = self.decomp.node_of_atom(atom)
                d = partial.setdefault((m, origin), {})
                if atom in d:
                    d[atom] = d[atom] + f
                else:
                    d[atom] = f.copy()
        self._pairs_cache = (counts, partial)
        self._pairs_step = self.step_index
        return self._pairs_cache

    def _bond_forces_for(self, terms: np.ndarray) -> dict[int, np.ndarray]:
        """Per-atom bonded forces from this node's assigned terms
        (bond terms and angle terms, indexed bonds-first)."""
        from repro.md.bonded import bonded_energy_forces

        nb = self.system.num_bonds
        terms = np.asarray(terms, dtype=np.int64)
        bond_subset = terms[terms < nb]
        angle_subset = terms[terms >= nb] - nb
        _e, f = bonded_energy_forces(
            self.system, bond_subset=bond_subset, angle_subset=angle_subset
        )
        atoms = set()
        for t in terms:
            atoms.update(self.bond_program.term_atoms(int(t)))
        return {a: f[a] for a in atoms}

    def _apply_forces(self, n: NodeCoord, node, atoms, kind: str) -> None:
        """Payload mode: collect the accumulated per-atom forces from
        this node's accumulation memory for verification
        (``collected_forces`` is compared against the serial kernels
        by the integration tests)."""
        if (
            not hasattr(self, "collected_forces")
            or self._forces_step != self.step_index
        ):
            self.collected_forces = np.zeros_like(self.system.positions)
            self._forces_step = self.step_index
        accum = node.accum[0]
        for atom in atoms:
            value = accum.value(("item", int(atom)))
            if isinstance(value, np.ndarray):
                self.collected_forces[int(atom)] += value


def _split_round_robin(items: list, k: int) -> list[list]:
    """Deal ``items`` into ``k`` lists round-robin."""
    out: list[list] = [[] for _ in range(k)]
    for i, item in enumerate(items):
        out[i % k].append(item)
    return out
