"""Discrete-event simulation engine.

A minimal, deterministic, generator-based discrete-event simulator in the
style of SimPy, specialised for the needs of the Anton communication
model: nanosecond-resolution simulated time, FCFS resources for links and
cores, and one-shot events used to model packet arrival and
synchronization-counter thresholds.

Design notes
------------
* Simulated time is a float in **nanoseconds**.  All orderings are made
  deterministic by breaking time ties with a monotonically increasing
  sequence number, so repeated runs produce identical traces.
* Processes are plain Python generators that ``yield`` waitables
  (:class:`Event`, :class:`Timeout`, another :class:`Process`, or an
  :class:`AllOf` / :class:`AnyOf` combinator).  This keeps the hot loop
  free of threads and allocation-heavy machinery (see the profiling
  guidance in the scientific-python optimization notes: make it work,
  make it deterministic, then make it fast).
* :class:`Resource` provides FCFS mutual exclusion with optional
  capacity, used for torus links, processing-slice occupancy, and HTIS
  pipelines.
"""

from repro.engine.event import AllOf, AnyOf, Event, Interrupt, Timeout
from repro.engine.process import Process
from repro.engine.resource import Resource, Store
from repro.engine.scheduler import (
    DEFAULT_SCHEDULER,
    SCHEDULER_NAMES,
    HeapScheduler,
    Scheduler,
    TimeWheelScheduler,
    engine_config,
    make_scheduler,
    resolve_scheduler,
    use_scheduler,
)
from repro.engine.simulator import (
    EventHistory,
    Simulator,
    add_new_sim_hook,
    remove_new_sim_hook,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "DEFAULT_SCHEDULER",
    "Event",
    "EventHistory",
    "HeapScheduler",
    "Interrupt",
    "Process",
    "Resource",
    "SCHEDULER_NAMES",
    "Scheduler",
    "Simulator",
    "Store",
    "TimeWheelScheduler",
    "Timeout",
    "add_new_sim_hook",
    "engine_config",
    "make_scheduler",
    "remove_new_sim_hook",
    "resolve_scheduler",
    "use_scheduler",
]
