"""Events and waitable combinators for the simulation engine.

An :class:`Event` is a one-shot occurrence: it starts *pending*, is
*triggered* exactly once with an optional value (or an exception for
failure), and thereafter holds its value forever.  Processes wait on
events by ``yield``-ing them; callbacks may also be attached directly,
which is how the simulator core itself is implemented.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.engine.simulator import Simulator

PENDING = object()


class Event:
    """A one-shot event that processes can wait on.

    Parameters
    ----------
    sim:
        The owning simulator.  Triggering an event schedules its
        callbacks at the current simulated time.
    name:
        Optional human-readable label used in ``repr`` and error
        messages.
    """

    __slots__ = ("sim", "name", "callbacks", "_value", "_ok")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True

    # -- state inspection ------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been succeeded or failed."""
        return self._value is not PENDING

    @property
    def ok(self) -> bool:
        """True if the event succeeded (meaningless before triggering)."""
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event was triggered with.

        Raises
        ------
        RuntimeError
            If the event is still pending.
        """
        if self._value is PENDING:
            raise RuntimeError(f"value of {self!r} is not yet available")
        return self._value

    # -- triggering ------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._value = value
        self._ok = True
        self.sim._dispatch(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception.

        Waiting processes will have the exception thrown into them.
        """
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._value = exception
        self._ok = False
        self.sim._dispatch(self)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Attach ``callback``; runs when the event fires.

        If the event already fired, the callback is invoked via the
        event queue at the current time (never synchronously), keeping
        execution order deterministic.
        """
        if self.callbacks is None:
            self.sim.schedule(0.0, callback, self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that fires automatically after ``delay`` nanoseconds."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay!r}")
        super().__init__(sim, name=f"timeout({delay})")
        self.delay = delay
        self._value = value
        self._ok = True
        sim._schedule_event(delay, self)


class Interrupt(Exception):
    """Raised inside a process when it is interrupted by another."""

    @property
    def cause(self) -> Any:
        """The cause passed to :meth:`Process.interrupt`."""
        return self.args[0] if self.args else None


class _Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` combinators."""

    __slots__ = ("events", "_pending_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]) -> None:
        super().__init__(sim)
        self.events: tuple[Event, ...] = tuple(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise ValueError("all events must belong to the same simulator")
        self._pending_count = sum(1 for ev in self.events if not ev.triggered)
        if self._check_immediate():
            return
        for ev in self.events:
            if not ev.triggered:
                ev.add_callback(self._on_child)
            elif not ev.ok:
                # Already-failed child: propagate eagerly.
                if not self.triggered:
                    self.fail(ev._value)
                return

    def _check_immediate(self) -> bool:
        raise NotImplementedError

    def _on_child(self, child: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires once every child event has fired.

    The value is a dict mapping each child event to its value, in the
    original order.  Fails as soon as any child fails.
    """

    __slots__ = ()

    def _check_immediate(self) -> bool:
        if self._pending_count == 0 and all(ev.ok for ev in self.events):
            self.succeed({ev: ev.value for ev in self.events})
            return True
        return False

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if not child.ok:
            self.fail(child._value)
            return
        self._pending_count -= 1
        if self._pending_count == 0:
            self.succeed({ev: ev.value for ev in self.events})


class AnyOf(_Condition):
    """Fires as soon as any child event fires (value = that child's value)."""

    __slots__ = ()

    def _check_immediate(self) -> bool:
        for ev in self.events:
            if ev.triggered and ev.ok:
                self.succeed(ev.value)
                return True
        return False

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if not child.ok:
            self.fail(child._value)
            return
        self.succeed(child.value)
