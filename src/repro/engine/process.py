"""Generator-based simulation processes.

A :class:`Process` wraps a Python generator.  Each value the generator
yields must be a waitable (:class:`~repro.engine.event.Event`, which
includes :class:`~repro.engine.event.Timeout`, other processes, and the
``AllOf``/``AnyOf`` combinators).  When the waitable fires, the process
is resumed with the waitable's value; if the waitable failed, the
exception is thrown into the generator so that processes can use
ordinary ``try``/``except`` for error handling.

A process is itself an :class:`Event` that fires with the generator's
return value, so processes can wait on each other (fork/join).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.engine.event import Event, Interrupt

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.simulator import Simulator

Coroutine = Generator[Event, Any, Any]


class Process(Event):
    """A running simulation process (also an event: fires on completion)."""

    __slots__ = ("generator", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: Coroutine, name: str = "") -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                f"Process requires a generator, got {type(generator).__name__}; "
                "did you call the process function with ()?"
            )
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self._waiting_on: Optional[Event] = None
        # Kick-start at the current time, via the queue for determinism.
        sim.schedule(0.0, self._resume, None, None)

    @property
    def is_alive(self) -> bool:
        """True while the underlying generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a
        process that is waiting detaches it from its waitable (the
        waitable may still fire later and is simply ignored).
        """
        if self.triggered:
            raise RuntimeError(f"cannot interrupt finished process {self!r}")
        self.sim.schedule(0.0, self._resume, None, Interrupt(cause))

    # -- engine internals -------------------------------------------------
    def _resume(self, value: Any, exc: Optional[BaseException]) -> None:
        if self.triggered:  # interrupted after completion race: drop
            return
        self._waiting_on = None
        try:
            if exc is not None:
                target = self.generator.throw(exc)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as error:
            # If somebody is waiting on this process, fail the completion
            # event so the waiter can handle it with try/except.  An
            # unobserved crash is a programming error: record it so the
            # simulator aborts the run with the original traceback.
            if self.callbacks:
                self.fail(error)
            else:
                self._value = error
                self._ok = False
                self.callbacks = None
                self.sim._record_crash(self, error)
            return
        self._wait_on(target)

    def _wait_on(self, target: Any) -> None:
        if not isinstance(target, Event):
            raise TypeError(
                f"process {self.name!r} yielded {target!r}; processes may "
                "only yield Event instances (Timeout, Process, AllOf, ...)"
            )
        if target.sim is not self.sim:
            raise ValueError("cannot wait on an event from another simulator")
        self._waiting_on = target
        target.add_callback(self._on_wait_done)

    def _on_wait_done(self, event: Event) -> None:
        if self._waiting_on is not event:
            # Stale callback (we were interrupted while waiting).
            return
        if event.ok:
            self._resume(event.value, None)
        else:
            self._resume(None, event._value)
