"""The simulator core: a deterministic event queue and clock.

The simulator maintains scheduled ``(time, sequence, action)`` entries
in a pluggable :class:`~repro.engine.scheduler.Scheduler` (the
historical binary heap, or the bucketed time wheel tuned to this
machine's discrete delay set — see :mod:`repro.engine.scheduler`).
The sequence number breaks ties so that events scheduled at the same
simulated time always execute in scheduling order, which makes every
simulation in this package fully reproducible (a requirement for the
trace-diffing tests and for the paper-reproduction benchmarks) — and
is also what lets the two schedulers produce byte-identical results:
FIFO order within a time bucket *is* sequence order.
"""

from __future__ import annotations

from time import perf_counter_ns
from types import FunctionType, MethodType
from typing import TYPE_CHECKING, Any, Callable, Iterable, Optional, Sequence

from repro.engine.event import AllOf, AnyOf, Event, Timeout
from repro.engine.process import Coroutine, Process
from repro.engine.scheduler import BATCH, FUSED, Scheduler, make_scheduler

if TYPE_CHECKING:  # pragma: no cover
    from repro.profile.profiler import EngineProfiler
    from repro.trace.metrics import MetricsRegistry


# ---------------------------------------------------------------------------
# Construction observers
# ---------------------------------------------------------------------------
#: Observers called once per :class:`Simulator` construction.  This is
#: how ambient sessions (the engine profiler, the run meter that feeds
#: ``RunResult.meta``) find every simulator an experiment builds
#: without parameter threading — the same reach-the-machinery problem
#: ``use_monitoring`` solves at ``build_machine``, solved one layer
#: lower so simulators without machines are covered too.  The disabled
#: fast path costs one truthiness test per *construction*, never per
#: event.
_NEW_SIM_HOOKS: list[Callable[["Simulator"], None]] = []


def add_new_sim_hook(
    hook: Callable[["Simulator"], None],
) -> Callable[["Simulator"], None]:
    """Register ``hook(sim)`` to run on every Simulator construction.

    Returns the hook so callers can keep the handle for
    :func:`remove_new_sim_hook`.  Hooks must be passive with respect to
    simulation semantics: attaching observers is fine, scheduling
    events is not.
    """
    _NEW_SIM_HOOKS.append(hook)
    return hook


def remove_new_sim_hook(hook: Callable[["Simulator"], None]) -> None:
    """Unregister a construction observer (missing hooks are ignored)."""
    try:
        _NEW_SIM_HOOKS.remove(hook)
    except ValueError:
        pass


class EventHistory:
    """Bounded record of executed engine events: ``(time, action name)``.

    Installed on a simulator with :meth:`Simulator.set_event_hook` (or
    the :meth:`install` convenience), it gives the critical-path
    analyzer a view of *engine* activity — how many scheduled actions
    fired inside a phase window, and where the event storm peaks —
    without instrumenting any subsystem.  Recording is bounded so a
    runaway simulation cannot exhaust memory; overflow is counted, not
    silently dropped.
    """

    def __init__(self, capacity: int = 200_000) -> None:
        self.capacity = capacity
        self.samples: list[tuple[float, str]] = []
        #: Events seen after the capacity was reached.  Analyses (and
        #: the health verdict, which surfaces this as telemetry loss)
        #: must treat a nonzero value as "the window is truncated",
        #: not "the run had this many events".
        self.dropped = 0

    @property
    def total_seen(self) -> int:
        """Every event offered to the history, recorded or dropped."""
        return len(self.samples) + self.dropped

    def record(self, when: float, fn: Callable[..., None]) -> None:
        if len(self.samples) < self.capacity:
            name = getattr(fn, "__qualname__", None) or repr(fn)
            self.samples.append((when, name))
        else:
            self.dropped += 1

    def install(self, sim: "Simulator") -> "EventHistory":
        sim.set_event_hook(self.record)
        return self

    def count_in(self, start_ns: float, end_ns: float) -> int:
        """Events executed inside a time window (inclusive)."""
        return sum(1 for t, _ in self.samples if start_ns <= t <= end_ns)

    def density(self, bucket_ns: float) -> list[tuple[float, int]]:
        """Events per fixed-width time bucket, sorted by bucket start."""
        if bucket_ns <= 0:
            raise ValueError(f"bucket_ns must be positive, got {bucket_ns}")
        buckets: dict[float, int] = {}
        for t, _ in self.samples:
            start = (t // bucket_ns) * bucket_ns
            buckets[start] = buckets.get(start, 0) + 1
        return sorted(buckets.items())

    def __len__(self) -> int:
        return len(self.samples)


class Simulator:
    """Discrete-event simulator with nanosecond float time.

    Parameters
    ----------
    scheduler:
        The event scheduler to run on: a
        :class:`~repro.engine.scheduler.Scheduler` instance, a name
        (``"heap"`` / ``"wheel"``), or ``None`` for the ambient default
        (:func:`~repro.engine.scheduler.resolve_scheduler` — a
        ``use_scheduler`` context, ``$REPRO_SCHEDULER``, or the
        package default).  Scheduler choice never changes results —
        the cross-scheduler property suite enforces byte-identity — it
        only changes how fast the event loop turns.
    """

    def __init__(self, scheduler: "Scheduler | str | None" = None) -> None:
        self.now: float = 0.0
        self._sched: Scheduler = make_scheduler(scheduler)
        #: Canonical name of the scheduler this simulator runs on —
        #: surfaced in ``RunResult.meta`` and ledger provenance.
        self.scheduler_name: str = self._sched.name
        self._seq: int = 0
        #: Unexecuted callbacks of the batch currently draining in
        #: :meth:`run` — counted by :attr:`pending` so the health
        #: monitor's queue-depth probe reads the same value under
        #: batching schedulers as under the entry-per-event heap.
        self._drain_tail: int = 0
        self._crashes: list[tuple[Process, BaseException]] = []
        #: Events executed by :meth:`run` — the engine's own telemetry.
        self.events_executed: int = 0
        #: Set by :meth:`repro.trace.metrics.MetricsRegistry.attach`.
        self.metrics: "Optional[MetricsRegistry]" = None
        #: Optional per-event observer, see :meth:`set_event_hook`.
        self._event_hook: Optional[Callable[[float, Callable[..., None]], None]] = None
        #: Optional periodic observer, see :meth:`set_monitor_hook`.
        self._monitor_hook: Optional[Callable[[float], float]] = None
        self._monitor_due: float = 0.0
        #: Optional engine self-profiler, see :meth:`set_profiler`.
        self._profiler: "Optional[EngineProfiler]" = None
        if _NEW_SIM_HOOKS:
            for hook in list(_NEW_SIM_HOOKS):
                hook(self)

    @property
    def scheduler(self) -> Scheduler:
        """The scheduler instance this simulator runs on."""
        return self._sched

    # -- scheduling -------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` after ``delay`` ns of simulated time."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay!r})")
        self._seq += 1
        self._sched.push(self.now + delay, self._seq, fn, args)

    def schedule_batch(
        self, delay: float, pairs: Sequence[tuple[Callable[..., None], tuple]]
    ) -> None:
        """Schedule many callbacks for the same instant as one entry.

        ``pairs`` is a sequence of ``(fn, args)`` tuples executed in
        order at ``now + delay``.  The callbacks receive *consecutive*
        sequence numbers, so execution order — and every observable
        byte — is identical to calling :meth:`schedule` in a loop; a
        batching scheduler just stores and drains them as one entry
        (the run loop still performs per-callback bookkeeping).  This
        is the transport layer's tool for homogeneous completion
        storms: a multicast node visit delivers to all local clients
        for ~1 scheduler entry instead of one per client.
        """
        n = len(pairs)
        if n == 0:
            return
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay!r})")
        if n == 1:
            fn, args = pairs[0]
            self._seq += 1
            self._sched.push(self.now + delay, self._seq, fn, args)
            return
        seq0 = self._seq + 1
        self._seq += n
        self._sched.push_batch(self.now + delay, seq0, pairs)

    def _schedule_event(self, delay: float, event: Event) -> None:
        """Internal: arrange for ``event``'s callbacks to fire after ``delay``."""
        self._seq += 1
        self._sched.push(self.now + delay, self._seq, self._fire, (event,))

    def _dispatch(self, event: Event) -> None:
        """Internal: an event was triggered now; run its callbacks now.

        Callbacks run through the queue (at the current time) so that
        the triggering code finishes before any waiter resumes.  A
        multi-waiter fan-out (an ``AllOf`` barrier releasing, a counter
        threshold waking every poller) is pushed as one batch entry:
        the callbacks hold consecutive sequence numbers either way, so
        ordering is unchanged.
        """
        callbacks = event.callbacks
        event.callbacks = None
        if not callbacks:
            return
        if len(callbacks) == 1:
            self._seq += 1
            self._sched.push(self.now, self._seq, callbacks[0], (event,))
            return
        args = (event,)
        seq0 = self._seq + 1
        self._seq += len(callbacks)
        self._sched.push_batch(
            self.now, seq0, [(cb, args) for cb in callbacks]
        )

    def _fire(self, event: Event) -> None:
        """Internal: deliver a pre-triggered event (Timeout)."""
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for cb in callbacks:
                cb(event)

    def _record_crash(self, process: Process, error: BaseException) -> None:
        self._crashes.append((process, error))

    # -- observation -------------------------------------------------------
    def set_event_hook(
        self, hook: Optional[Callable[[float, Callable[..., None]], None]]
    ) -> Optional[Callable[[float, Callable[..., None]], None]]:
        """Install an observer called as ``hook(when, fn)`` just before
        each event executes; returns the previous hook.

        The hook is passive telemetry (an :class:`EventHistory`, a
        progress meter): it must not schedule events or mutate
        simulation state, and the disabled fast path costs one ``None``
        test per event.  Pass ``None`` to uninstall.  Install before
        :meth:`run`: the run loop binds observer presence at batch
        boundaries.
        """
        prev = self._event_hook
        self._event_hook = hook
        return prev

    def set_monitor_hook(
        self,
        hook: Optional[Callable[[float], float]],
        due: float = 0.0,
    ) -> Optional[Callable[[float], float]]:
        """Install a periodic observer driven by the run loop itself.

        ``hook(now)`` is called at an event boundary (after the clock
        advanced, before the event's action runs) whenever ``now``
        reaches the current due time, and must return the *next* due
        time.  Unlike scheduling a recurring event, the hook lives
        outside the event queue: it consumes no sequence numbers, never
        keeps an idle simulation alive, and survives any number of
        :meth:`run` calls — which is what makes it the right carrier
        for always-on health monitoring (the sampler ticks ride on
        simulated activity and stop costing anything when the machine
        is idle).

        The hook must be a passive observer: reading simulator,
        network, or client state is fine; scheduling events or mutating
        state breaks the monitoring-is-bit-identical guarantee.  The
        disabled fast path costs one ``None`` test per event.  Returns
        the previous hook; pass ``None`` to uninstall.
        """
        prev = self._monitor_hook
        self._monitor_hook = hook
        self._monitor_due = due
        return prev

    def set_profiler(
        self, profiler: "Optional[EngineProfiler]"
    ) -> "Optional[EngineProfiler]":
        """Install (or with ``None`` remove) the engine self-profiler.

        While installed, :meth:`run` accounts the wall-clock cost and
        count of every executed event to the profiler, classified by
        event type, owning component, and open simulation phase.  The
        profiler is a passive wall-clock observer — it never touches
        simulated time, the queue, or sequence numbers, so profiled
        runs are bit-identical to unprofiled ones.  Attach before
        calling :meth:`run`; the run loop binds the profiler at entry.
        The disabled fast path costs one ``None`` test per event.
        Returns the previous profiler.
        """
        prev = self._profiler
        self._profiler = profiler
        return prev

    @property
    def pending(self) -> int:
        """Scheduled callbacks currently awaiting execution.

        Counts logically — every member of a batched entry, plus the
        unexecuted tail of a batch mid-drain — so the value is
        identical whichever scheduler is installed.
        """
        return self._sched.size + self._drain_tail

    # -- waitable factories ------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a pending one-shot event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` ns."""
        return Timeout(self, delay, value)

    def process(self, generator: Coroutine, name: str = "") -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Wait for every event in ``events``."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Wait for the first event in ``events``."""
        return AnyOf(self, events)

    # -- execution ----------------------------------------------------------
    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``
                run until the event queue is empty.
            a float
                run until simulated time reaches that many ns.
            an :class:`Event`
                run until the event triggers; returns its value.

        Raises
        ------
        RuntimeError
            If a process crashed and nothing was waiting on it, the
            underlying exception is chained and re-raised here so that
            programming errors inside processes are never silent.
        """
        stop_time: Optional[float] = None
        stop_event: Optional[Event] = None
        if isinstance(until, Event):
            stop_event = until
        elif until is not None:
            stop_time = float(until)
            if stop_time < self.now:
                raise ValueError(
                    f"until={stop_time} is in the past (now={self.now})"
                )

        sched = self._sched
        pop = sched.pop
        # The profiler is bound once per run() call: attach-before-run
        # is guaranteed by the construction hooks, and a local keeps
        # the per-event cost of the common disabled case at one test.
        profiler = self._profiler
        if profiler is not None:
            # Hot-path state, bound once per run() call: the phase-
            # keyed rec cache maps a stable per-call-site key (a code
            # object) straight to the [count, wall_ns] accumulator for
            # the current phase; rec_for is the cold path that
            # classifies and primes it.
            cache_get = profiler.rec_cache.get
            rec_slow = profiler.rec_for
            pc = perf_counter_ns
            loop_t0 = pc()
            t_prev = loop_t0
        try:
            while sched.size:
                if stop_time is not None and sched.peek_time() > stop_time:
                    self.now = stop_time
                    break
                when, seq, fn, args = pop()
                if fn is BATCH or fn is FUSED:
                    # A fused entry: callbacks sharing this instant
                    # under consecutive (BATCH) or in-order (FUSED)
                    # seqs.  Per-callback semantics (event count,
                    # hooks, stop/crash checks) are preserved; with no
                    # observer and no stop event installed the drain
                    # runs a tight loop — the engine's fast path.
                    self.now = when
                    fast = (stop_event is None and profiler is None
                            and self._event_hook is None
                            and self._monitor_hook is None)
                    if fn is FUSED:
                        # A window into the live bucket list; draining
                        # in place keeps the hot loop allocation-free.
                        entries, j, end = args
                        if fast:
                            crashes = self._crashes
                            j0 = j
                            try:
                                while j < end:
                                    e = entries[j]
                                    j += 1
                                    e[2](*e[3])
                                    if crashes:
                                        self._raise_crash()
                            except BaseException:
                                # Anything escaping mid-drain must not
                                # drop the unexecuted tail: put it
                                # back, exactly as the entry-per-event
                                # heap would have kept it.
                                if j < end:
                                    sched.requeue(
                                        when, seq,
                                        [(x[2], x[3])
                                         for x in entries[j:end]])
                                raise
                            finally:
                                self.events_executed += j - j0
                            continue
                        pairs = [(x[2], x[3]) for x in entries[j:end]]
                        n = end - j
                    else:
                        pairs = args
                        n = len(pairs)
                        if fast:
                            crashes = self._crashes
                            i = 0
                            try:
                                while i < n:
                                    f, a = pairs[i]
                                    i += 1
                                    f(*a)
                                    if crashes:
                                        self._raise_crash()
                            except BaseException:
                                if i < n:
                                    sched.requeue(when, seq + i, pairs[i:])
                                raise
                            finally:
                                self.events_executed += i
                            continue
                    i = 0
                    self._drain_tail = n
                    try:
                        while i < n:
                            f, a = pairs[i]
                            i += 1
                            self._drain_tail = n - i
                            self.events_executed += 1
                            if self._event_hook is not None:
                                self._event_hook(when, f)
                            if (self._monitor_hook is not None
                                    and when >= self._monitor_due):
                                self._monitor_due = self._monitor_hook(when)
                            if profiler is None:
                                f(*a)
                            else:
                                # Same inline key derivation and
                                # chained timing as the single-entry
                                # path below: one clock read per
                                # callback keeps the accounting
                                # exact-tiling under batching.
                                fcls = f.__class__
                                if fcls is MethodType:
                                    obj = f.__self__
                                    ocls = obj.__class__
                                    if ocls is Process:
                                        key = obj.generator.gi_code
                                    elif ocls is Simulator:
                                        key = None
                                    else:
                                        key = f.__func__.__code__
                                elif fcls is FunctionType:
                                    key = f.__code__
                                else:
                                    key = None
                                rec = cache_get(key) if key is not None else None
                                if rec is None:
                                    rec = rec_slow(f, a, key)
                                f(*a)
                                t_now = pc()
                                rec[0] += 1
                                rec[1] += t_now - t_prev
                                t_prev = t_now
                            if stop_event is not None and stop_event.triggered:
                                if stop_event.ok:
                                    if i < n:
                                        sched.requeue(when, seq + i, pairs[i:])
                                    return stop_event.value
                                # failed awaited event: the except
                                # clause below requeues the tail
                                raise stop_event._value  # type: ignore[misc]
                            if self._crashes:
                                self._raise_crash()
                    except BaseException:
                        if i < n:
                            sched.requeue(when, seq + i, pairs[i:])
                        raise
                    finally:
                        self._drain_tail = 0
                    continue
                self.now = when
                self.events_executed += 1
                if self._event_hook is not None:
                    self._event_hook(when, fn)
                if self._monitor_hook is not None and when >= self._monitor_due:
                    self._monitor_due = self._monitor_hook(when)
                if profiler is None:
                    fn(*args)
                else:
                    # Inline key derivation for the two common callable
                    # shapes (bound python method, plain function);
                    # everything else takes the cold path.  Timing is
                    # chained — one clock read per event — so an
                    # event's wall is dispatch-inclusive: it covers the
                    # scheduler pop, hook dispatch, and this
                    # bookkeeping that delivered it, not just its body.
                    fcls = fn.__class__
                    if fcls is MethodType:
                        obj = fn.__self__
                        ocls = obj.__class__
                        if ocls is Process:
                            key = obj.generator.gi_code
                        elif ocls is Simulator:
                            key = None  # _fire: resolve the waiter cold
                        else:
                            key = fn.__func__.__code__
                    elif fcls is FunctionType:
                        key = fn.__code__
                    else:
                        key = None
                    rec = cache_get(key) if key is not None else None
                    if rec is None:
                        rec = rec_slow(fn, args, key)
                    fn(*args)
                    t_now = pc()
                    rec[0] += 1
                    rec[1] += t_now - t_prev
                    t_prev = t_now
                if stop_event is not None and stop_event.triggered:
                    if stop_event.ok:
                        return stop_event.value
                    raise stop_event._value  # type: ignore[misc]
                if self._crashes:
                    self._raise_crash()
            else:
                if stop_time is not None:
                    self.now = stop_time
        finally:
            if profiler is not None:
                profiler.account_loop(perf_counter_ns() - loop_t0)
        if stop_event is not None and not stop_event.triggered:
            raise RuntimeError(
                "simulation ran out of events before the awaited event "
                f"{stop_event!r} triggered (deadlock?)"
            )
        return None

    def _raise_crash(self) -> None:
        proc, err = self._crashes.pop(0)
        self._crashes.clear()
        raise RuntimeError(f"unhandled exception in process {proc.name!r}") from err
