"""FCFS resources and stores.

:class:`Resource` models a server with fixed capacity (a torus link
direction, a processing-slice core, an HTIS pipeline front-end): requests
are granted strictly in arrival order.  :class:`Store` is an unbounded
FIFO of items with blocking ``get``, used for hardware message FIFOs and
for handing packets between pipeline stages.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.engine.event import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.simulator import Simulator


class Resource:
    """A FCFS resource with integer capacity.

    Usage inside a process::

        req = resource.request()
        yield req
        try:
            yield sim.timeout(service_time)
        finally:
            resource.release()

    or, more conveniently, ``yield from resource.use(sim, service_time)``.
    """

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: deque[Event] = deque()
        # Statistics for utilization accounting (trace/stats).
        self.total_busy_ns: float = 0.0
        self._busy_since: Optional[float] = None
        #: Deepest wait queue ever observed (head-of-line telemetry);
        #: updated only on the contended path, so uncontended resources
        #: pay nothing.
        self.peak_queue_length: int = 0

    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiters)

    def request(self) -> Event:
        """Return an event that fires when a slot is granted."""
        ev = Event(self.sim)
        if self._in_use < self.capacity:
            self._grant(ev)
        else:
            self._waiters.append(ev)
            if len(self._waiters) > self.peak_queue_length:
                self.peak_queue_length = len(self._waiters)
        return ev

    def try_acquire(self) -> bool:
        """Grant a slot immediately if one is free (hot-path variant:
        no Event allocation).  Pair with :meth:`release`."""
        if self._in_use < self.capacity:
            if self._in_use == 0 and self._busy_since is None:
                self._busy_since = self.sim.now
            self._in_use += 1
            return True
        return False

    def release(self) -> None:
        """Release one previously granted slot."""
        if self._in_use <= 0:
            raise RuntimeError(f"release() without matching request() on {self.name!r}")
        self._in_use -= 1
        if self._waiters:
            self._grant(self._waiters.popleft())
        elif self._in_use == 0 and self._busy_since is not None:
            self.total_busy_ns += self.sim.now - self._busy_since
            self._busy_since = None

    def _grant(self, ev: Event) -> None:
        if self._in_use == 0 and self._busy_since is None:
            self._busy_since = self.sim.now
        self._in_use += 1
        ev.succeed(self)

    def use(self, service_ns: float) -> Generator[Event, Any, None]:
        """Acquire, hold for ``service_ns``, release.  ``yield from`` this."""
        if not self.try_acquire():
            yield self.request()
        try:
            yield self.sim.timeout(service_ns)
        finally:
            self.release()

    def utilization(self, elapsed_ns: Optional[float] = None) -> float:
        """Fraction of time this resource was busy (any slot in use).

        A zero-length (or negative) window has no meaningful busy
        fraction; it reports 0.0 rather than dividing by zero — this
        covers both an explicit ``elapsed_ns=0`` and querying before
        the simulation clock has advanced.
        """
        horizon = elapsed_ns if elapsed_ns is not None else self.sim.now
        if horizon <= 0:
            return 0.0
        busy = self.total_busy_ns
        if self._busy_since is not None:
            busy += self.sim.now - self._busy_since
        return busy / horizon


class Store:
    """An unbounded FIFO with blocking ``get``.

    ``put`` never blocks (backpressure, where modelled, is enforced by
    the producer checking :attr:`size` against a limit — this mirrors
    Anton's hardware message FIFO, where the *network* exerts
    backpressure when the FIFO fills, see §III.C of the paper).
    """

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()
        self.total_puts = 0
        self.total_gets = 0

    @property
    def size(self) -> int:
        """Number of items currently queued."""
        return len(self._items)

    def put(self, item: Any) -> None:
        """Append an item; wakes one blocked getter if present."""
        self.total_puts += 1
        if self._getters:
            self.total_gets += 1
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next item."""
        ev = Event(self.sim)
        if self._items:
            self.total_gets += 1
            ev.succeed(self._items.popleft())
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking get; returns ``None`` when empty."""
        if self._items:
            self.total_gets += 1
            return self._items.popleft()
        return None
