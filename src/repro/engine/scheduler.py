"""Pluggable event schedulers for the simulator core.

The simulator's run loop used to hard-code a ``heapq`` of
``(time, seq, fn, args)`` entries.  This module extracts that choice
into a first-class :class:`Scheduler` interface with two built-in
implementations:

:class:`HeapScheduler`
    The engine's historical scheduler, bit-for-bit: one binary heap of
    entries ordered by ``(time, seq)``.  Batched schedules are expanded
    into individual heap entries, which is exactly what the pre-batching
    code paths did — this is the reference the equivalence property
    suite measures everything against.

:class:`TimeWheelScheduler`
    A calendar queue tuned to this machine's workload.  Anton's latency
    model draws every delay from a tiny discrete set (4/8/10 ns wire
    hops, 19/25 ns ring traversals, fixed serialization times), so at
    any instant the pending-event population clusters on very few
    distinct timestamps.  The wheel keys a FIFO bucket on each *exact*
    timestamp (a dict — ns-granularity bucketing degenerates to exact
    keying because the delay set is discrete) and keeps the distinct
    bucket times in a small overflow heap (the "horizon").  Draining a
    bucket costs one heap operation per distinct *timestamp* instead of
    one per *event*; same-time events — the mdstep barrier storms and
    the 26-to-1 incast funnels — cost a list append and an index walk.

Ordering contract (what makes results byte-identical): sequence numbers
are allocated monotonically by the simulator at schedule time, so FIFO
order within a bucket *is* ``(time, seq)`` order — the wheel never
sorts, and never needs to.  Both schedulers therefore execute the exact
same event permutation; the property suite in
``tests/properties/test_scheduler_equivalence.py`` enforces it.

Batched entries
---------------
:meth:`Scheduler.push_batch` schedules ``n`` callbacks that share one
instant and occupy *consecutive* sequence numbers.  Because nothing can
schedule in between their seqs, the batch may be stored as a single
entry and drained in one tight loop — the run loop still performs
per-callback bookkeeping (event count, hooks, crash and stop checks),
so telemetry and verdicts are unchanged.  The heap expands batches
(historical behavior); the wheel keeps them fused, which is where the
hop-costs-one-event speedup comes from.

Selection
---------
``Simulator(scheduler=...)`` accepts a name or an instance; ``None``
resolves the ambient default: an active :func:`use_scheduler` context,
else the ``REPRO_SCHEDULER`` environment variable, else
:data:`DEFAULT_SCHEDULER`.  :func:`engine_config` reports the resolved
configuration so run metadata, ledger provenance, and cache entries can
record which scheduler produced a result.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from heapq import heappop, heappush
from typing import Any, Callable, Iterator, Optional, Sequence

#: Sentinel stored in an entry's ``fn`` slot to mark a fused batch; the
#: ``args`` slot then holds the sequence of ``(fn, args)`` pairs.  It
#: can never collide with a real callable because identity, not
#: equality, is tested.
BATCH: Any = object()

#: Sentinel for a run of single entries fused *at pop time* (wheel
#: only): the ``args`` slot holds ``(entries, start, end)`` — a window
#: into the live bucket list of ``(when, seq, fn, args)`` entries.
#: Returning the window instead of copying into pairs keeps the drain
#: allocation-free, which is most of the win on storms of independent
#: same-tick singles (the dominant shape in mdstep: 93% of its events
#: share their tick with others, but few arrive through the batch API).
FUSED: Any = object()

#: Minimum run length :meth:`TimeWheelScheduler.pop` will fuse.  Each
#: fused window costs two fresh gc-tracked tuples, so fusing the tiny
#: 2-3 entry runs that dominate timer-driven phases trades a cheap
#: scheduler round-trip for allocation churn — measured on the 8x8x8
#: mdstep run, it nearly doubled gen-0 collections and erased the
#: wheel's win.  Storm-sized runs (the 26- and 256-wide fan-ins this
#: engine exists for) amortize the window cost to nothing.
FUSE_MIN = 4

#: One scheduled callback of a batch: ``(fn, args)``.
Pair = tuple[Callable[..., None], tuple]

#: The ambient default when nothing selects a scheduler explicitly.
#: The wheel is the production default — the property suite proves it
#: byte-identical to the heap, and it is the fast path the ROADMAP
#: asked for; ``REPRO_SCHEDULER=heap`` restores the reference engine.
DEFAULT_SCHEDULER = "wheel"

#: Environment override consulted when no ``use_scheduler`` context is
#: active and ``Simulator(scheduler=None)``.
ENV_VAR = "REPRO_SCHEDULER"

#: Accepted spellings -> canonical scheduler name.
_ALIASES = {
    "heap": "heap",
    "heapq": "heap",
    "wheel": "wheel",
    "timewheel": "wheel",
    "time-wheel": "wheel",
    "time_wheel": "wheel",
    "calendar": "wheel",
}

SCHEDULER_NAMES = ("heap", "wheel")

#: Stack of :func:`use_scheduler` overrides (innermost last).
_AMBIENT: list[str] = []


def canonical_scheduler_name(name: str) -> str:
    """Normalize a scheduler spelling, raising on unknown names."""
    key = str(name).strip().lower()
    try:
        return _ALIASES[key]
    except KeyError:
        raise ValueError(
            f"unknown scheduler {name!r}; choose from {SCHEDULER_NAMES} "
            f"(aliases: {sorted(_ALIASES)})"
        ) from None


def resolve_scheduler(name: Optional[str] = None) -> str:
    """The canonical scheduler name selection resolves to.

    Precedence: an explicit ``name`` > the innermost
    :func:`use_scheduler` context > ``$REPRO_SCHEDULER`` >
    :data:`DEFAULT_SCHEDULER`.
    """
    if name is not None:
        return canonical_scheduler_name(name)
    if _AMBIENT:
        return _AMBIENT[-1]
    env = os.environ.get(ENV_VAR)
    if env is not None and env.strip():
        return canonical_scheduler_name(env)
    return DEFAULT_SCHEDULER


@contextmanager
def use_scheduler(name: str) -> Iterator[str]:
    """Make ``name`` the ambient default scheduler within the block.

    Affects every ``Simulator(scheduler=None)`` constructed inside —
    the lever the equivalence suite and the paired benchmark use to run
    one experiment under both engines without threading parameters
    through the experiment registry.
    """
    canonical = canonical_scheduler_name(name)
    _AMBIENT.append(canonical)
    try:
        yield canonical
    finally:
        _AMBIENT.remove(canonical)


def engine_config() -> dict:
    """The engine configuration ambient runs execute under — recorded
    in ``RunResult.meta``, ledger provenance, and cache entry documents
    (deliberately *outside* the cache key: the property suite proves
    results byte-identical across schedulers, so a cached result is
    valid under either)."""
    return {"scheduler": resolve_scheduler()}


def make_scheduler(spec: "Scheduler | str | None" = None) -> "Scheduler":
    """Build (or pass through) a scheduler from a name/instance/None."""
    if isinstance(spec, Scheduler):
        return spec
    name = resolve_scheduler(spec if isinstance(spec, str) else None)
    if name == "heap":
        return HeapScheduler()
    return TimeWheelScheduler()


class Scheduler:
    """Interface the run loop drives; subclasses provide storage.

    Entries are ``(when, seq, fn, args)`` tuples; a fused batch entry
    carries :data:`BATCH` in the ``fn`` slot and its ``(fn, args)``
    pairs in ``args``.  ``size`` is the *logical* number of pending
    callbacks (batch members counted individually) — it backs
    ``Simulator.pending``, which the health monitor probes, so both
    implementations must agree on it exactly.
    """

    #: Canonical name, for provenance.
    name = "abstract"

    #: Logical pending-callback count (public attribute: the run loop
    #: reads it every iteration).
    size: int

    def push(self, when: float, seq: int, fn: Callable[..., None],
             args: tuple) -> None:
        raise NotImplementedError

    def push_batch(self, when: float, seq0: int,
                   pairs: Sequence[Pair]) -> None:
        """Schedule ``pairs`` at ``when`` under consecutive sequence
        numbers ``seq0 .. seq0+len(pairs)-1`` (already allocated by the
        simulator)."""
        raise NotImplementedError

    def pop(self) -> tuple:
        """Remove and return the earliest entry (never called empty)."""
        raise NotImplementedError

    def peek_time(self) -> float:
        """Earliest pending time (never called empty)."""
        raise NotImplementedError

    def requeue(self, when: float, seq: int, pairs: Sequence[Pair]) -> None:
        """Put back the unexecuted tail of the batch returned by the
        immediately preceding :meth:`pop` (the run loop stopped mid
        batch — stop event triggered or a process crashed).  The tail
        must run before every other entry pending at ``when``."""
        raise NotImplementedError

    def __len__(self) -> int:
        return self.size


class HeapScheduler(Scheduler):
    """The historical engine: one binary heap ordered by ``(time, seq)``.

    Batches are expanded into individual entries at push time — exactly
    the event population the pre-batching code created — which makes
    this the byte-identity reference and the baseline side of the
    paired scheduler benchmark.
    """

    name = "heap"

    __slots__ = ("_q", "size")

    def __init__(self) -> None:
        self._q: list[tuple] = []
        self.size = 0

    def push(self, when: float, seq: int, fn: Callable[..., None],
             args: tuple) -> None:
        heappush(self._q, (when, seq, fn, args))
        self.size += 1

    def push_batch(self, when: float, seq0: int,
                   pairs: Sequence[Pair]) -> None:
        q = self._q
        for i, (fn, args) in enumerate(pairs):
            heappush(q, (when, seq0 + i, fn, args))
        self.size += len(pairs)

    def pop(self) -> tuple:
        self.size -= 1
        return heappop(self._q)

    def peek_time(self) -> float:
        return self._q[0][0]

    def requeue(self, when: float, seq: int, pairs: Sequence[Pair]) -> None:
        # The tail keeps its original (already-allocated) seqs, which
        # precede every other pending seq at ``when``.
        q = self._q
        for i, (fn, args) in enumerate(pairs):
            heappush(q, (when, seq + i, fn, args))
        self.size += len(pairs)


class TimeWheelScheduler(Scheduler):
    """Calendar queue: exact-timestamp FIFO buckets + a horizon heap.

    Invariants (the byte-identity argument):

    * ``_buckets`` maps each pending timestamp to its entries in FIFO
      order; appends happen in seq-allocation order, so bucket order
      *is* ``(time, seq)`` order.  A lone entry is stored *bare* (the
      tuple itself, no enclosing list) — the dominant shape in
      timer-driven phases — and promoted to a list on the second
      same-time push.  This keeps the singleton hot path as
      allocation-lean as the raw heap (one gc-tracked tuple per event;
      the list-per-timestamp variant doubled gen-0 collections on the
      8x8x8 mdstep run).
    * ``_horizon`` is a heap of the distinct bucket times not currently
      draining; each time appears at most once.
    * A *list* bucket being drained (``_cur`` at ``_cur_time``) stays
      in the dict while it drains, so same-instant schedules issued
      *by* its events (``schedule(0.0, ...)`` continuations, dispatch
      fan-out) append behind the cursor and run in order.  It is
      retired (deleted) only when the cursor finds it exhausted — by
      which point the clock has moved on and nothing can schedule at
      its time again.  A bucket re-created at the retired time between
      runs is protected by the identity check in :meth:`_advance`.
    * A *bare* bucket is deleted the moment it is mounted: it holds
      exactly one pending entry, so a same-instant schedule issued by
      that entry's callback simply re-creates the bucket (with a later
      seq) and re-enters the horizon — order is preserved because
      nothing else was pending at that time.

    ``pop`` additionally *fuses* a run of same-bucket single entries
    into one synthesized batch, so storms of distinct callbacks landing
    on one tick (the incast funnel) are drained by the run loop's tight
    inner loop instead of one scheduler round-trip per event.
    """

    name = "wheel"

    __slots__ = ("_buckets", "_horizon", "_cur", "_cur_time", "_idx",
                 "_fused", "size")

    def __init__(self) -> None:
        #: timestamp -> bare entry tuple (singleton) or FIFO list.
        self._buckets: dict[float, object] = {}
        self._horizon: list[float] = []
        self._cur: Optional[list] = None
        self._cur_time: float = 0.0
        self._idx: int = 0
        #: Bucket slots consumed by the most recent :meth:`pop` (1 for
        #: a plain or pre-fused batch entry, ``k`` for ``k`` fused
        #: singles) — what :meth:`requeue` rewinds over.
        self._fused: int = 1
        self.size = 0

    def push(self, when: float, seq: int, fn: Callable[..., None],
             args: tuple) -> None:
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = (when, seq, fn, args)
            heappush(self._horizon, when)
        elif type(bucket) is list:
            bucket.append((when, seq, fn, args))
        else:
            self._buckets[when] = [bucket, (when, seq, fn, args)]
        self.size += 1

    def push_batch(self, when: float, seq0: int,
                   pairs: Sequence[Pair]) -> None:
        entry = (when, seq0, BATCH, pairs)
        bucket = self._buckets.get(when)
        if bucket is None:
            self._buckets[when] = entry
            heappush(self._horizon, when)
        elif type(bucket) is list:
            bucket.append(entry)
        else:
            self._buckets[when] = [bucket, entry]
        self.size += len(pairs)

    def _advance(self):
        """Retire the drained bucket and mount the earliest next one.

        Returns the mounted list, or the entry itself for a bare
        (singleton) bucket — which is unhooked from the dict right
        here, so the caller must not touch the cursor for it.
        """
        cur = self._cur
        if cur is not None and self._buckets.get(self._cur_time) is cur:
            del self._buckets[self._cur_time]
        when = heappop(self._horizon)
        nxt = self._buckets[when]
        if type(nxt) is not list:
            del self._buckets[when]
            self._cur = None
            self._cur_time = when
            return nxt
        self._cur = nxt
        self._cur_time = when
        self._idx = 0
        return nxt

    def pop(self) -> tuple:
        cur = self._cur
        i = self._idx
        if cur is None or i >= len(cur):
            nxt = self._advance()
            if type(nxt) is tuple:
                # Bare singleton, already unhooked.
                self._fused = 1
                self.size -= (len(nxt[3]) if nxt[2] is BATCH else 1)
                return nxt
            cur = nxt
            i = 0
        entry = cur[i]
        i += 1
        if entry[2] is BATCH:
            self._idx = i
            self._fused = 1
            self.size -= len(entry[3])
            return entry
        # Fuse the run of single entries ahead of the cursor: they all
        # share this bucket's time, their seqs are already in order,
        # and per-callback bookkeeping happens in the run loop either
        # way — so draining them as one window is observably identical
        # and skips a scheduler round-trip (and any copying) per event.
        n = len(cur)
        if i < n and cur[i][2] is not BATCH:
            j = i + 1
            while j < n and cur[j][2] is not BATCH:
                j += 1
            count = j - i + 1
            if count >= FUSE_MIN:
                self._idx = j
                self._fused = count
                self.size -= count
                return (entry[0], entry[1], FUSED, (cur, i - 1, j))
        self._idx = i
        self._fused = 1
        self.size -= 1
        return entry

    def peek_time(self) -> float:
        cur = self._cur
        if cur is not None and self._idx < len(cur):
            return self._cur_time
        return self._horizon[0]

    def requeue(self, when: float, seq: int, pairs: Sequence[Pair]) -> None:
        # Called only immediately after the pop that yielded the batch,
        # so the cursor still points just past its slot(s).
        if self._fused > 1:
            # Fused singles still occupy their bucket slots; rewinding
            # the cursor over the unexecuted ones restores them.
            self._idx -= len(pairs)
        elif self._cur is not None:
            # A pre-fused batch occupied one list slot; overwrite it
            # with the remainder and rewind one.
            self._idx -= 1
            self._cur[self._idx] = (when, seq, BATCH, tuple(pairs))
        else:
            # The batch came off a bare bucket (already unhooked).  The
            # executed prefix may have scheduled new same-instant
            # entries, re-creating the bucket — the tail's seqs precede
            # theirs, so it goes in front.
            entry = (when, seq, BATCH, tuple(pairs))
            bucket = self._buckets.get(when)
            if bucket is None:
                self._buckets[when] = entry
                heappush(self._horizon, when)
            elif type(bucket) is list:
                bucket.insert(0, entry)
            else:
                self._buckets[when] = [entry, bucket]
        self.size += len(pairs)
