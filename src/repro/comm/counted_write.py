"""The counted-remote-write gather abstraction (§III.B, Fig. 4).

When one or more network clients must send a predetermined number of
related packets to a single target client, space for these packets is
pre-allocated within the target's local memory.  The sources write
their data directly to the target memory, labelling all write packets
with the same synchronization-counter identifier; the target polls the
counter to learn when everything has arrived.  The operation is
logically a gather (a set of remote reads) but requires no explicit
synchronization between sources and target.

:class:`CountedGather` packages the bookkeeping the MD software layers
repeat constantly: buffer allocation, per-source slot assignment, the
expected-count contract, and the send/poll helpers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator, Optional, Sequence

from repro.asic.client import NetworkClient
from repro.asic.slice_ import ProcessingSlice
from repro.engine.event import Event
from repro.topology.torus import NodeCoord

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.simulator import Simulator


@dataclass(frozen=True)
class GatherSource:
    """One source's contribution to a counted gather."""

    node: NodeCoord
    client: str
    packets: int

    def __post_init__(self) -> None:
        if self.packets < 1:
            raise ValueError(f"a source must contribute >= 1 packet, got {self.packets}")


class CountedGather:
    """A fixed counted-remote-write gather into one target client.

    Parameters
    ----------
    target:
        The receiving client; a buffer named ``name`` with one slot per
        expected packet is pre-allocated in its local memory.
    name:
        Buffer and counter identifier, agreed by all parties.
    sources:
        The fixed set of contributing sources with their fixed packet
        counts (§IV.A: both the pattern and the number of packets are
        fixed before communication starts).
    """

    def __init__(
        self,
        target: NetworkClient,
        name: str,
        sources: Sequence[GatherSource],
    ) -> None:
        if not sources:
            raise ValueError("a gather needs at least one source")
        self.target = target
        self.name = name
        self.sources = tuple(sources)
        self.expected = sum(s.packets for s in self.sources)
        self.buffer = target.memory.allocate(name, self.expected)
        # Deterministic slot layout: sources own contiguous slot ranges
        # in declaration order, so every sender can compute its target
        # addresses with no coordination at run time.
        self._slot_base: dict[tuple[NodeCoord, str], int] = {}
        base = 0
        for s in self.sources:
            key = (s.node, s.client)
            if key in self._slot_base:
                raise ValueError(f"duplicate source {key} in gather {name!r}")
            self._slot_base[key] = base
            base += s.packets
        self._completions = 0

    # -- sender side -------------------------------------------------------
    def slot(self, source_node: "NodeCoord | int", source_client: str, index: int) -> int:
        """The pre-agreed buffer slot for a source's ``index``-th packet."""
        node = self.target.network.torus.coord(source_node)
        base = self._slot_base.get((node, source_client))
        if base is None:
            raise KeyError(f"{node}:{source_client} is not a source of gather {self.name!r}")
        packets = next(
            s.packets for s in self.sources if (s.node, s.client) == (node, source_client)
        )
        if not 0 <= index < packets:
            raise IndexError(
                f"source {node}:{source_client} declared {packets} packets; "
                f"index {index} out of range"
            )
        return base + index

    def send_from(
        self,
        sender: ProcessingSlice,
        payloads: Sequence[Any],
        payload_bytes: Optional[int] = None,
    ) -> Generator[Event, Any, None]:
        """Send this source's packets back to back.  ``yield from`` this.

        ``payloads`` must match the source's declared packet count —
        the fixed-count contract is enforced, because violating it
        would hang the receiver's poll forever on real hardware.
        """
        declared = next(
            (
                s.packets
                for s in self.sources
                if (s.node, s.client) == (sender.node, sender.name)
            ),
            None,
        )
        if declared is None:
            raise KeyError(f"{sender.node}:{sender.name} is not a source of {self.name!r}")
        if len(payloads) != declared:
            raise ValueError(
                f"source {sender.node}:{sender.name} declared {declared} packets "
                f"for gather {self.name!r} but is sending {len(payloads)}"
            )
        for i, payload in enumerate(payloads):
            slot = self.slot(sender.node, sender.name, i)
            yield from sender.send_write(
                self.target.node,
                self.target.name,
                counter_id=self.name,
                address=(self.name, slot),
                payload=payload,
                payload_bytes=payload_bytes,
            )

    # -- receiver side --------------------------------------------------------
    def complete(self) -> Event:
        """Event firing when all expected packets have arrived
        (poll cost not included; see :meth:`ProcessingSlice.poll`)."""
        return self.target.counter(self.name).wait_for(self.expected)

    def wait(self, poller: ProcessingSlice) -> Generator[Event, Any, float]:
        """Receiver-side wait: poll until the expected count, pay the
        poll cost, and return the completion time."""
        if poller is self.target:
            return (yield from poller.poll(self.name, self.expected))
        # Accumulation-memory counters are polled by a slice on the
        # same node across the on-chip ring.
        return (yield from poller.poll_accum(self.target, self.name, self.expected))

    def gathered(self) -> list[Any]:
        """All written payloads in slot order (post-completion helper)."""
        return self.buffer.filled()

    def reset(self) -> None:
        """Reuse the gather for the next phase: clear slots + counter."""
        self.buffer.clear()
        self.target.counter(self.name).reset()
