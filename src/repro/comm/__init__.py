"""Anton's communication paradigms built on the network substrate.

* :mod:`repro.comm.counted_write` — the counted-remote-write gather
  abstraction (§III.B): pre-allocated receive buffers, fixed packet
  counts, synchronization embedded in communication.
* :mod:`repro.comm.patterns` — fixed communication-pattern descriptors
  established before a simulation begins (§IV.A).
* :mod:`repro.comm.collectives` — dimension-ordered global all-reduce
  and barrier (§IV.B.4), plus a radix-2 butterfly for hop-count
  comparison.
* :mod:`repro.comm.migration` — the atom-migration protocol: FIFO
  messages plus an in-order multicast flush write (§IV.B.5).
"""

from repro.comm.counted_write import CountedGather, GatherSource
from repro.comm.collectives import (
    AllReduce,
    butterfly_hops,
    butterfly_rounds,
    dimension_ordered_hops,
    dimension_ordered_rounds,
)
from repro.comm.migration import MigrationProtocol
from repro.comm.patterns import CommPattern, PatternRegistry

__all__ = [
    "AllReduce",
    "CommPattern",
    "CountedGather",
    "GatherSource",
    "MigrationProtocol",
    "PatternRegistry",
    "butterfly_hops",
    "butterfly_rounds",
    "dimension_ordered_hops",
    "dimension_ordered_rounds",
]
