"""Atom migration (§IV.B.5).

Migration is stochastic: no node knows in advance how many atoms it
will send or receive, so counted remote writes do not apply directly.
Anton's protocol:

* migration messages go to the receiving slice's hardware message FIFO
  (pre-allocating buffers for all possible messages from all 26
  neighbours would be extremely wasteful);
* after sending all of its migration messages, each node multicasts a
  counted remote write to all 26 nearest neighbours, using the
  network's in-order mechanism so the flush cannot overtake migration
  messages in flight;
* a receiver is done once the flush counter has reached its neighbour
  count *and* the FIFO has been drained.

This is the one place in the MD dataflow where synchronization is not
embedded in the data communication itself; the paper measures the
flush synchronization at 0.56 µs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Generator, Optional, Sequence

from repro.asic.node import Machine
from repro.constants import (
    FIFO_POLL_NS,
    FIFO_PROCESS_NS,
    MIGRATION_SCAN_NS_PER_ATOM,
    POLL_SUCCESS_NS,
)
from repro.engine.event import Event
from repro.network.multicast import compile_pattern
from repro.topology.torus import NodeCoord
from repro.trace.metrics import active_registry

#: Software cost to dequeue and process one FIFO message.
_FIFO_MSG_COST_NS = FIFO_POLL_NS + FIFO_PROCESS_NS
_POLL_NS = POLL_SUCCESS_NS

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.simulator import Simulator

#: Bytes of one migrating atom record: position, velocity, identity and
#: bond bookkeeping (3×8 + 3×8 + 16).
ATOM_MIGRATION_BYTES = 64

#: Slice index that owns migration on every node.
MIGRATION_SLICE = 3


@dataclass
class MigrationResult:
    """Outcome of one migration phase."""

    elapsed_ns: float
    messages_sent: int
    messages_received: int
    per_node_done_ns: dict[NodeCoord, float]
    received_payloads: dict[NodeCoord, list[Any]]
    fifo_high_watermark: int

    @property
    def elapsed_us(self) -> float:
        return self.elapsed_ns / 1000.0


class MigrationProtocol:
    """Reusable migration phase for a whole machine."""

    def __init__(self, machine: Machine, slice_index: int = MIGRATION_SLICE) -> None:
        self.machine = machine
        self.sim = machine.sim
        self.slice_index = slice_index
        self.torus = machine.torus
        self._patterns: dict[NodeCoord, int] = {}
        self._neighbor_count: dict[NodeCoord, int] = {}
        self._runs = 0
        client = f"slice{slice_index}"
        for coord in self.torus.nodes():
            neighbors = self.torus.moore_neighbors(coord)
            self._neighbor_count[coord] = len(neighbors)
            if neighbors:
                tree = compile_pattern(
                    self.torus, coord, {n: [client] for n in neighbors}
                )
                self._patterns[coord] = machine.network.register_pattern(tree)

    def _flush_ctr(self) -> str:
        return f"mig-flush-{self._runs}"

    # ------------------------------------------------------------------
    def start(
        self,
        moves: Optional[dict[NodeCoord, Sequence[tuple[NodeCoord, Any]]]] = None,
        scan_atoms: Optional[dict[NodeCoord, int]] = None,
    ) -> tuple[list, dict[NodeCoord, float], dict[NodeCoord, list[Any]], dict]:
        """Spawn sender+receiver processes for one migration phase
        (for embedding in a larger simulation).

        ``scan_atoms`` maps each node to its resident atom count; the
        sending slice pays the per-atom migration-bookkeeping scan
        before its sends (§IV.B.5).

        Returns ``(processes, done_times, received, moves)``.
        """
        torus = self.torus
        moves = {torus.coord(k): list(v) for k, v in (moves or {}).items()}
        for src, records in moves.items():
            neighbors = set(torus.moore_neighbors(src))
            for dst, _ in records:
                if torus.coord(dst) not in neighbors:
                    raise ValueError(
                        f"migration from {src} to {dst} is not a nearest-"
                        "neighbour move; atoms migrate at most one home box"
                    )
        self._runs += 1
        done: dict[NodeCoord, float] = {}
        received: dict[NodeCoord, list[Any]] = {c: [] for c in torus.nodes()}
        scan_atoms = scan_atoms or {}
        procs = []
        for coord in torus.nodes():
            procs.append(
                self.sim.process(
                    self._sender(
                        coord, moves.get(coord, []), scan_atoms.get(coord, 0)
                    ),
                    name=f"mig-send@{coord}",
                )
            )
            procs.append(
                self.sim.process(
                    self._receiver(coord, done, received), name=f"mig-recv@{coord}"
                )
            )
        return procs, done, received, moves

    def run(
        self,
        moves: Optional[dict[NodeCoord, Sequence[tuple[NodeCoord, Any]]]] = None,
        scan_atoms: Optional[dict[NodeCoord, int]] = None,
    ) -> MigrationResult:
        """Execute one migration phase.

        Parameters
        ----------
        moves:
            Maps each source node to its outgoing ``(destination,
            payload)`` records.  Destinations must be Moore neighbours
            of the source (atoms move at most one home box per
            migration on Anton).  ``None`` means an empty migration —
            which measures the pure synchronization cost.
        """
        torus = self.torus
        start = self.sim.now
        fl = self.machine.network.flight
        phase = f"migration#{self._runs + 1}"
        if fl.enabled:
            fl.phase_begin(phase, start)
        from repro.profile.profiler import active_profiler

        prof = active_profiler()
        if prof is not None:
            prof.phase_begin("migration")
        try:
            procs, done, received, moves = self.start(moves, scan_atoms)
            self.sim.run(until=self.sim.all_of(procs))
        finally:
            if prof is not None:
                prof.phase_end("migration")
        if fl.enabled:
            fl.phase_end(phase, max(done.values()))
        sent = sum(len(v) for v in moves.values())
        got = sum(len(v) for v in received.values())
        if got != sent:  # pragma: no cover - protocol invariant
            raise AssertionError(f"migration lost messages: sent {sent}, received {got}")
        hw = max(
            self.machine.node(c).slices[self.slice_index].fifo.high_watermark
            for c in torus.nodes()
        )
        reg = active_registry()
        if reg is not None:
            reg.counter("comm.migration.runs").inc()
            reg.counter("comm.migration.messages").inc(sent)
            reg.histogram("comm.migration.elapsed_ns").observe(
                max(done.values()) - start
            )
            reg.gauge("comm.migration.fifo_high_watermark").set(hw)
        return MigrationResult(
            elapsed_ns=max(done.values()) - start,
            messages_sent=sent,
            messages_received=got,
            per_node_done_ns=done,
            received_payloads=received,
            fifo_high_watermark=hw,
        )

    # ------------------------------------------------------------------
    def _sender(
        self,
        coord: NodeCoord,
        records: list[tuple[NodeCoord, Any]],
        scan_atoms: int = 0,
    ) -> Generator[Event, Any, None]:
        node = self.machine.node(coord)
        s = node.slices[self.slice_index]
        client = s.name
        if scan_atoms:
            # Bounds-check every resident atom and update the expected-
            # packet bookkeeping for leavers (§IV.B.5).
            yield from s.tensilica_work(scan_atoms * MIGRATION_SCAN_NS_PER_ATOM)
        for dst, payload in records:
            yield from s.send_fifo_message(
                dst,
                client,
                payload=payload,
                payload_bytes=ATOM_MIGRATION_BYTES,
                in_order=True,
            )
        # Flush: multicast counted remote write to all 26 neighbours,
        # in-order so it cannot overtake the migration messages.
        pid = self._patterns.get(coord)
        if pid is not None:
            yield from s.send_write(
                coord,
                client,
                counter_id=self._flush_ctr(),
                payload_bytes=0,
                in_order=True,
                pattern_id=pid,
            )

    def _receiver(
        self,
        coord: NodeCoord,
        done: dict[NodeCoord, float],
        received: dict[NodeCoord, list[Any]],
    ) -> Generator[Event, Any, None]:
        node = self.machine.node(coord)
        s = node.slices[self.slice_index]
        expected_flushes = self._neighbor_count[coord]
        flush_ev = s.counter(self._flush_ctr()).wait_for(expected_flushes)
        while not flush_ev.triggered:
            poll_ev = s.fifo.poll()
            yield self.sim.any_of([poll_ev, flush_ev])
            if poll_ev.triggered:
                pkt = poll_ev.value
                yield from s.tensilica_work(_FIFO_MSG_COST_NS)
                received[coord].append(pkt.payload)
            else:
                s.fifo.cancel(poll_ev)
        # Flushes all arrived: in-order delivery guarantees every
        # migration message is already in the FIFO.  Pay the successful
        # counter poll, then drain.
        yield from s.tensilica.use(_POLL_NS)
        while True:
            pkt = s.fifo.try_poll()
            if pkt is None:
                break
            yield from s.tensilica_work(_FIFO_MSG_COST_NS)
            received[coord].append(pkt.payload)
        done[coord] = self.sim.now
