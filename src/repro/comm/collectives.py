"""Global reductions and barriers (§IV.B.4, Table 2).

Anton provides no specific hardware support for global reductions, but
the combination of multicast and counted remote writes yields a fast
software implementation:

* the 3-D reduction decomposes into parallel 1-D all-reduce rounds
  along X, then Y, then Z (the QCDOC algorithm), achieving the minimum
  total hop count — 3N/2 for an N×N×N machine versus 3(N−1) for a
  radix-2 butterfly;
* within a dimension, each of the N nodes multicasts its partial value
  to the other N−1 nodes with counted remote writes, then all N
  redundantly compute the same sum;
* processing slice *k* handles round *k*, so after three rounds slice 2
  holds the global sum and shares it locally with the other slices;
* the sums run in software on the slices — polling accumulation-memory
  counters across the ring would cost more than the adds;
* a global barrier is simply a 0-byte reduction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Generator, Optional

import numpy as np

from repro.asic.node import Machine
from repro.constants import REDUCE_SUM_NS_PER_WORD
from repro.engine.event import Event
from repro.network.multicast import compile_pattern
from repro.topology.torus import DIMS, NodeCoord
from repro.trace.metrics import active_registry

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.simulator import Simulator

_AXIS = {"x": 0, "y": 1, "z": 2}


# ---------------------------------------------------------------------------
# Analytic hop/round counts (paper §IV.B.4 comparison)
# ---------------------------------------------------------------------------

def dimension_ordered_rounds(shape: tuple[int, int, int]) -> int:
    """Communication rounds of the dimension-ordered algorithm (≤ 3)."""
    return sum(1 for n in shape if n > 1)


def dimension_ordered_hops(shape: tuple[int, int, int]) -> int:
    """Sequential hop count of the dimension-ordered algorithm.

    Per dimension the farthest peer is ``n // 2`` hops away, so an
    N×N×N machine needs 3N/2 hops, as the paper states.
    """
    return sum(n // 2 for n in shape if n > 1)


def butterfly_rounds(shape: tuple[int, int, int]) -> int:
    """Rounds of a radix-2 butterfly: 3·log2(N) for N×N×N."""
    total = 0
    for n in shape:
        if n > 1:
            if n & (n - 1):
                raise ValueError(f"butterfly requires power-of-two extents, got {n}")
            total += int(math.log2(n))
    return total

def butterfly_hops(shape: tuple[int, int, int]) -> int:
    """Sequential hop count of a radix-2 butterfly on the torus.

    Partners sit at distances 1, 2, 4, … n/2 along each dimension; the
    sum is n−1 per dimension — 3(N−1) for N×N×N, as the paper states.
    """
    total = 0
    for n in shape:
        if n > 1:
            if n & (n - 1):
                raise ValueError(f"butterfly requires power-of-two extents, got {n}")
            total += n - 1
    return total


# ---------------------------------------------------------------------------
# Result container
# ---------------------------------------------------------------------------

@dataclass
class AllReduceResult:
    """Outcome of one all-reduce execution."""

    value: Any
    elapsed_ns: float
    per_node_done_ns: dict[NodeCoord, float]

    @property
    def elapsed_us(self) -> float:
        return self.elapsed_ns / 1000.0


# ---------------------------------------------------------------------------
# Dimension-ordered all-reduce
# ---------------------------------------------------------------------------

class AllReduce:
    """Reusable dimension-ordered global all-reduce on a machine.

    Construction establishes the fixed communication patterns: one
    multicast tree per (node, active dimension) reaching slice *k* of
    the node's axis peers, and one receive buffer + counter per round
    on each slice.  ``run()`` then executes the collective and measures
    its latency; the object can be reused (counters reset) any number
    of times, matching how the thermostat reduction runs every other
    time step.

    Parameters
    ----------
    machine:
        The simulated Anton machine.
    payload_bytes:
        Reduction payload (Table 2 uses 0 and 32).
    share_locally:
        When true (default), completion includes slice 2 sharing the
        result with the other three slices on each node.
    """

    def __init__(
        self,
        machine: Machine,
        payload_bytes: int = 32,
        share_locally: bool = True,
    ) -> None:
        self.machine = machine
        self.sim = machine.sim
        self.payload_bytes = payload_bytes
        self.share_locally = share_locally
        self.torus = machine.torus
        self.active_dims = [d for d in DIMS if self.torus.shape[_AXIS[d]] > 1]
        self._round_slice = {d: k for k, d in enumerate(self.active_dims)}
        self._patterns: dict[tuple[NodeCoord, str], int] = {}
        self._runs = 0
        # Receive buffers are pre-allocated and never freed; a second
        # AllReduce on the same machine gets its own buffer namespace.
        self._uid = AllReduce._instances
        AllReduce._instances += 1
        self._setup()

    _instances = 0

    # -- fixed pattern establishment ---------------------------------------
    def _setup(self) -> None:
        torus = self.torus
        for coord in torus.nodes():
            node = self.machine.node(coord)
            for dim in self.active_dims:
                k = self._round_slice[dim]
                slice_k = node.slices[k]
                n = torus.shape[_AXIS[dim]]
                # Receive buffer: one slot per axis position; the
                # sender's axis coordinate is the slot, so one multicast
                # address works at every receiver.
                slice_k.memory.allocate(self._buf(dim), n)
                peers = torus.axis_peers(coord, dim)
                tree = compile_pattern(
                    torus, coord, {p: [f"slice{k}"] for p in peers}
                )
                pid = self.machine.network.register_pattern(tree)
                self._patterns[(coord, dim)] = pid
            if self.share_locally and self.active_dims:
                last_k = self._round_slice[self.active_dims[-1]]
                for i in range(4):
                    if i != last_k:
                        node.slices[i].memory.allocate(self._share_buf(), 1)

    def _buf(self, dim: str) -> str:
        return f"allreduce{self._uid}-{dim}"

    def _share_buf(self) -> str:
        return f"allreduce{self._uid}-share"

    def _ctr(self, dim: str) -> str:
        return f"allreduce{self._uid}-{dim}-{self._runs}"

    def _hand_ctr(self, k: int) -> str:
        return f"allreduce{self._uid}-hand{k}-{self._runs}"

    def _share_ctr(self) -> str:
        return f"allreduce{self._uid}-share-{self._runs}"

    # -- execution --------------------------------------------------------------
    def start(
        self, values: Optional[dict[NodeCoord, float]] = None
    ) -> tuple[list, dict[NodeCoord, float], dict[NodeCoord, float]]:
        """Spawn the per-node reduce processes (for embedding in a
        larger simulation, e.g. the MD thermostat phase).

        Returns ``(processes, done_times, final)``; ``final`` fills in
        as nodes complete.  The caller waits on the processes.
        """
        torus = self.torus
        if values is None:
            values = {c: float(torus.rank(c)) for c in torus.nodes()}
        missing = [c for c in torus.nodes() if c not in values]
        if missing:
            raise ValueError(f"missing contributions for nodes {missing[:3]}...")
        self._runs += 1
        done_times: dict[NodeCoord, float] = {}
        final: dict[NodeCoord, float] = {}
        procs = [
            self.sim.process(
                self._node_process(coord, values[coord], done_times, final),
                name=f"allreduce@{coord}",
            )
            for coord in torus.nodes()
        ]
        return procs, done_times, final

    def run(self, values: Optional[dict[NodeCoord, float]] = None) -> AllReduceResult:
        """Execute one all-reduce over per-node scalar contributions.

        ``values`` maps node coordinate to its contribution (default:
        every node contributes its rank, which makes the expected sum
        easy to verify).  Returns the result with timing.
        """
        start = self.sim.now
        fl = self.machine.network.flight
        phase = f"allreduce[{self.payload_bytes}B]#{self._runs + 1}"
        if fl.enabled:
            fl.phase_begin(phase, start)
        from repro.profile.profiler import active_profiler

        prof = active_profiler()
        if prof is not None:
            prof.phase_begin("allreduce")
        try:
            procs, done_times, final = self.start(values)
            self.sim.run(until=self.sim.all_of(procs))
        finally:
            if prof is not None:
                prof.phase_end("allreduce")
        elapsed = max(done_times.values()) - start
        if fl.enabled:
            fl.phase_end(phase, max(done_times.values()))
        results = set(final.values())
        if len(results) != 1:
            raise AssertionError(f"all-reduce diverged: {sorted(results)[:4]}")
        reg = active_registry()
        if reg is not None:
            reg.counter("comm.allreduce.runs").inc()
            reg.histogram("comm.allreduce.elapsed_ns").observe(elapsed)
        return AllReduceResult(
            value=final[next(iter(final))],
            elapsed_ns=elapsed,
            per_node_done_ns=done_times,
        )

    def _node_process(
        self,
        coord: NodeCoord,
        value: float,
        done_times: dict[NodeCoord, float],
        final: dict[NodeCoord, float],
    ) -> Generator[Event, Any, None]:
        node = self.machine.node(coord)
        torus = self.torus
        words = max(0, self.payload_bytes // 4)
        v = value
        for round_idx, dim in enumerate(self.active_dims):
            k = self._round_slice[dim]
            slice_k = node.slices[k]
            n = torus.shape[_AXIS[dim]]
            my_slot = coord[_AXIS[dim]]
            # Multicast this node's partial to slice k of all axis peers.
            yield from slice_k.send_write(
                coord,
                slice_k.name,
                counter_id=self._ctr(dim),
                address=(self._buf(dim), my_slot),
                payload=v,
                payload_bytes=self.payload_bytes,
                pattern_id=self._patterns[(coord, dim)],
            )
            # Poll for the other N-1 contributions.
            yield from slice_k.poll(self._ctr(dim), n - 1)
            buf = slice_k.memory.buffer(self._buf(dim))
            contributions = [s for s in buf.slots if s is not None]
            if len(contributions) != n - 1:  # pragma: no cover - counted-write invariant
                raise AssertionError(
                    f"{coord} round {dim}: counter fired with "
                    f"{len(contributions)}/{n-1} slots written"
                )
            # Redundant software sum on the Tensilica core.
            sum_ns = REDUCE_SUM_NS_PER_WORD * max(1, words) * (n - 1)
            yield from slice_k.tensilica_work(sum_ns)
            v = v + float(np.sum(contributions))
            buf.clear()
            # Hand the partial to the next round's slice, locally.
            if round_idx + 1 < len(self.active_dims):
                nxt = node.slices[self._round_slice[self.active_dims[round_idx + 1]]]
                yield from slice_k.send_write(
                    coord,
                    nxt.name,
                    counter_id=self._hand_ctr(round_idx),
                    address=None,
                    payload=v,
                    payload_bytes=self.payload_bytes,
                )
                yield from nxt.poll(self._hand_ctr(round_idx), 1)
        # Final: the last round's slice shares the global sum locally.
        if self.share_locally and self.active_dims:
            last_slice = node.slices[self._round_slice[self.active_dims[-1]]]
            others = [s for s in node.slices if s is not last_slice]
            waits = []
            for peer in others:
                yield from last_slice.send_write(
                    coord,
                    peer.name,
                    counter_id=self._share_ctr(),
                    address=(self._share_buf(), 0),
                    payload=v,
                    payload_bytes=self.payload_bytes,
                )
            for peer in others:
                waits.append(
                    self.sim.process(
                        peer.poll(self._share_ctr(), 1), name="share-poll"
                    )
                )
            yield self.sim.all_of(waits)
        final[coord] = v
        done_times[coord] = self.sim.now


# ---------------------------------------------------------------------------
# Radix-2 butterfly all-reduce (comparison baseline)
# ---------------------------------------------------------------------------

class ButterflyAllReduce:
    """Radix-2 butterfly all-reduce on the same machine.

    Used only as a comparison point: the paper notes a butterfly needs
    3·log2(N) rounds and 3(N−1) sequential hops versus 3 rounds and
    3N/2 hops for the dimension-ordered algorithm.  Exchanges are
    unicast counted remote writes between partners at power-of-two
    distances.
    """

    def __init__(self, machine: Machine, payload_bytes: int = 32) -> None:
        self.machine = machine
        self.sim = machine.sim
        self.payload_bytes = payload_bytes
        self.torus = machine.torus
        for n in self.torus.shape:
            if n > 1 and n & (n - 1):
                raise ValueError("butterfly requires power-of-two torus extents")
        self._stages: list[tuple[str, int]] = []
        for dim in DIMS:
            n = self.torus.shape[_AXIS[dim]]
            d = 1
            while d < n:
                self._stages.append((dim, d))
                d *= 2
        for coord in self.torus.nodes():
            self.machine.node(coord).slices[0].memory.allocate("bfly", len(self._stages))
        self._runs = 0

    def run(self, values: Optional[dict[NodeCoord, float]] = None) -> AllReduceResult:
        torus = self.torus
        if values is None:
            values = {c: float(torus.rank(c)) for c in torus.nodes()}
        self._runs += 1
        start = self.sim.now
        fl = self.machine.network.flight
        phase = f"butterfly[{self.payload_bytes}B]#{self._runs}"
        if fl.enabled:
            fl.phase_begin(phase, start)
        from repro.profile.profiler import active_profiler

        prof = active_profiler()
        if prof is not None:
            prof.phase_begin("butterfly")
        try:
            done: dict[NodeCoord, float] = {}
            final: dict[NodeCoord, float] = {}
            procs = [
                self.sim.process(self._node_process(c, values[c], done, final))
                for c in torus.nodes()
            ]
            self.sim.run(until=self.sim.all_of(procs))
        finally:
            if prof is not None:
                prof.phase_end("butterfly")
        if fl.enabled:
            fl.phase_end(phase, max(done.values()))
        results = set(final.values())
        if len(results) != 1:
            raise AssertionError(f"butterfly all-reduce diverged: {sorted(results)[:4]}")
        elapsed = max(done.values()) - start
        reg = active_registry()
        if reg is not None:
            reg.counter("comm.butterfly.runs").inc()
            reg.histogram("comm.butterfly.elapsed_ns").observe(elapsed)
        return AllReduceResult(
            value=final[next(iter(final))],
            elapsed_ns=elapsed,
            per_node_done_ns=done,
        )

    def _node_process(self, coord, value, done, final):
        node = self.machine.node(coord)
        torus = self.torus
        s0 = node.slices[0]
        v = value
        words = max(1, self.payload_bytes // 4)
        for stage, (dim, dist) in enumerate(self._stages):
            axis = _AXIS[dim]
            n = torus.shape[axis]
            pos = coord[axis]
            partner_pos = pos ^ dist
            partner = {
                "x": (partner_pos, coord.y, coord.z),
                "y": (coord.x, partner_pos, coord.z),
                "z": (coord.x, coord.y, partner_pos),
            }[dim]
            ctr = f"bfly-{stage}-{self._runs}"
            yield from s0.send_write(
                partner,
                "slice0",
                counter_id=ctr,
                address=("bfly", stage),
                payload=v,
                payload_bytes=self.payload_bytes,
            )
            yield from s0.poll(ctr, 1)
            other = s0.memory.read(("bfly", stage))
            yield from s0.tensilica_work(REDUCE_SUM_NS_PER_WORD * words)
            v = v + float(other)
        final[coord] = v
        done[coord] = self.sim.now


def barrier(machine: Machine) -> float:
    """Global barrier as a 0-byte reduction; returns its latency in ns.

    The paper notes a fast barrier can be built this way, although
    Anton's MD code avoids global barriers entirely by other
    synchronization (Table 2 caption).
    """
    ar = AllReduce(machine, payload_bytes=0, share_locally=False)
    return ar.run().elapsed_ns
