"""Fixed communication-pattern descriptors (§IV.A).

Anton's software relies almost entirely on a choreographed data flow in
which a sender pushes data directly to its destination: receive-side
storage is pre-allocated before a simulation begins, packet counts are
fixed, and patterns change only at rare, well-defined points (bond
program regeneration, mesh repartitioning).

:class:`PatternRegistry` is the bookkeeping object the MD layer uses to
establish all patterns up front and to assert, at run time, that no
communication happens outside a registered pattern — the property that
makes counted remote writes usable at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Optional

from repro.comm.counted_write import CountedGather, GatherSource
from repro.network.multicast import MulticastPattern, compile_pattern
from repro.topology.torus import NodeCoord

if TYPE_CHECKING:  # pragma: no cover
    from repro.asic.client import NetworkClient
    from repro.network.network import Network


@dataclass
class CommPattern:
    """One named fixed pattern: a gather, a multicast, or both.

    Attributes
    ----------
    name:
        Unique pattern name (doubles as counter/buffer identifier).
    gather:
        The counted gather at the receiving end, if the pattern
        delivers into a single client.
    multicast:
        The compiled multicast tree, if the pattern fans out from a
        single sender.
    generation:
        Incremented when the pattern is re-established (e.g. bond
        program regeneration, §IV.B.2); senders embed the generation in
        sanity checks so a stale sender is caught immediately.
    """

    name: str
    gather: Optional[CountedGather] = None
    multicast: Optional[MulticastPattern] = None
    generation: int = 0


class PatternRegistry:
    """All fixed patterns of one application, established up front."""

    def __init__(self, network: "Network") -> None:
        self.network = network
        self._patterns: dict[str, CommPattern] = {}
        self._frozen = False

    def register_gather(
        self,
        name: str,
        target: "NetworkClient",
        sources: Iterable[GatherSource],
    ) -> CommPattern:
        """Establish a counted gather pattern."""
        self._check_open(name)
        pattern = CommPattern(name=name, gather=CountedGather(target, name, list(sources)))
        self._patterns[name] = pattern
        return pattern

    def register_multicast(
        self,
        name: str,
        source: "NodeCoord | int",
        destinations: dict,
    ) -> CommPattern:
        """Compile and program a multicast pattern."""
        self._check_open(name)
        tree = compile_pattern(self.network.torus, source, destinations)
        self.network.register_pattern(tree)
        pattern = CommPattern(name=name, multicast=tree)
        self._patterns[name] = pattern
        return pattern

    def freeze(self) -> None:
        """Mark setup complete: no new patterns until :meth:`reopen`.

        Mirrors the machine's operating discipline — patterns are
        programmed before the simulation starts and stay fixed through
        the run (§IV.A).
        """
        self._frozen = True

    def reopen(self) -> None:
        """Allow re-establishing patterns (bond program regeneration).

        Every existing pattern's generation is bumped so stale senders
        can be detected.
        """
        self._frozen = False
        for p in self._patterns.values():
            p.generation += 1

    def get(self, name: str) -> CommPattern:
        try:
            return self._patterns[name]
        except KeyError:
            raise KeyError(
                f"communication pattern {name!r} was never established; "
                "fixed patterns must be registered before use (§IV.A)"
            ) from None

    def replace_gather(
        self,
        name: str,
        target: "NetworkClient",
        sources: Iterable[GatherSource],
        buffer_suffix: str,
    ) -> CommPattern:
        """Re-establish a gather under the same logical name.

        Because receive buffers are pre-allocated and never freed, the
        new gather uses a distinct buffer/counter name
        (``name + buffer_suffix``); callers address the pattern by its
        logical name and always reach the current generation.
        """
        if self._frozen:
            raise RuntimeError("registry is frozen; call reopen() first")
        old = self.get(name)
        gather = CountedGather(target, name + buffer_suffix, list(sources))
        pattern = CommPattern(name=name, gather=gather, generation=old.generation + 1)
        self._patterns[name] = pattern
        return pattern

    def names(self) -> list[str]:
        return sorted(self._patterns)

    def __len__(self) -> int:
        return len(self._patterns)

    def _check_open(self, name: str) -> None:
        if self._frozen:
            raise RuntimeError(
                f"cannot register pattern {name!r}: registry is frozen "
                "(patterns are fixed before the simulation begins, §IV.A)"
            )
        if name in self._patterns:
            raise ValueError(f"pattern {name!r} already registered")
