"""One Anton node (ASIC) and whole-machine construction (Fig. 1).

Each ASIC constitutes an Anton node: four processing slices (the
flexible subsystem), one HTIS, and two accumulation memories, all
hanging off the on-chip ring with connections to the six inter-node
torus links.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Optional

from repro.asic.accumulation import AccumulationMemory
from repro.asic.htis import HTIS
from repro.asic.slice_ import ProcessingSlice
from repro.topology.torus import NodeCoord, Torus3D

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.simulator import Simulator
    from repro.network.network import Network

NUM_SLICES = 4
NUM_ACCUM = 2


class AntonNode:
    """All clients of one ASIC, bundled."""

    def __init__(
        self,
        sim: "Simulator",
        network: "Network",
        coord: "NodeCoord | int",
        fifo_capacity: int = 64,
        htis_pairs_per_ns: Optional[float] = None,
    ) -> None:
        self.sim = sim
        self.network = network
        self.coord = network.torus.coord(coord)
        self.slices = tuple(
            ProcessingSlice(sim, network, self.coord, i, fifo_capacity=fifo_capacity)
            for i in range(NUM_SLICES)
        )
        htis_kwargs = {}
        if htis_pairs_per_ns is not None:
            htis_kwargs["pairs_per_ns"] = htis_pairs_per_ns
        self.htis = HTIS(sim, network, self.coord, **htis_kwargs)
        self.accum = tuple(
            AccumulationMemory(sim, network, self.coord, i) for i in range(NUM_ACCUM)
        )

    @property
    def rank(self) -> int:
        return self.network.torus.rank(self.coord)

    def slice(self, index: int) -> ProcessingSlice:
        return self.slices[index]

    def clients(self):
        """All seven network clients of this node."""
        return (*self.slices, self.htis, *self.accum)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<AntonNode {self.coord}>"


class Machine:
    """A complete simulated Anton machine: torus + network + nodes."""

    def __init__(
        self,
        sim: "Simulator",
        torus: Torus3D,
        network: "Network",
        nodes: dict[NodeCoord, AntonNode],
    ) -> None:
        self.sim = sim
        self.torus = torus
        self.network = network
        self.nodes = nodes

    def node(self, coord: "NodeCoord | int") -> AntonNode:
        return self.nodes[self.torus.coord(coord)]

    def __iter__(self) -> Iterator[AntonNode]:
        for coord in self.torus.nodes():
            yield self.nodes[coord]

    def __len__(self) -> int:
        return len(self.nodes)


def build_machine(
    sim: "Simulator",
    nx: int,
    ny: int,
    nz: int,
    *,
    reorder_jitter_ns: float = 0.0,
    fifo_capacity: int = 64,
    htis_pairs_per_ns: Optional[float] = None,
    seed: int = 0,
) -> Machine:
    """Construct an ``nx × ny × nz`` Anton machine.

    Returns a :class:`Machine` with every node's clients attached to a
    fresh :class:`~repro.network.network.Network`.
    """
    from repro.network.network import Network  # local import: avoid cycle

    torus = Torus3D(nx, ny, nz)
    network = Network(sim, torus, reorder_jitter_ns=reorder_jitter_ns, seed=seed)
    nodes = {
        coord: AntonNode(
            sim,
            network,
            coord,
            fifo_capacity=fifo_capacity,
            htis_pairs_per_ns=htis_pairs_per_ns,
        )
        for coord in torus.nodes()
    }
    machine = Machine(sim, torus, network, nodes)
    # Ambient continuous monitoring (mirrors the flight recorder's
    # pickup): machines built inside a `use_monitoring` block get a
    # health monitor attached without parameter threading.  Local
    # import — repro.monitor imports the trace stack.
    from repro.monitor.health import active_monitor_session

    session = active_monitor_session()
    if session is not None:
        session.attach(sim, machine)
    return machine
