"""Base class for network clients (Fig. 3).

Three distinct types of clients connect to the Anton network: the HTIS
units, the accumulation memories, and the processing slices.  Every
client contains a local memory that directly accepts write packets
issued by other clients, and a set of synchronization counters
(§III.B).  This base class implements the shared delivery semantics:

* a **write** packet updates the local memory at its target address,
  then increments its labelled synchronization counter;
* an **accum** packet is rejected (only accumulation memories accept
  them — they override :meth:`_receive_accum`);
* a **fifo** packet is rejected (only processing slices carry a
  hardware message FIFO).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.asic.memory import LocalMemory
from repro.asic.sync_counter import SyncCounter
from repro.engine.event import Event
from repro.network.packet import Packet, PacketKind
from repro.topology.torus import NodeCoord

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.simulator import Simulator
    from repro.network.network import Network


class NetworkClient:
    """A network client with local memory and synchronization counters."""

    def __init__(
        self,
        sim: "Simulator",
        network: "Network",
        node: "NodeCoord | int",
        name: str,
    ) -> None:
        self.sim = sim
        self.network = network
        self.node = network.torus.coord(node)
        self.name = name
        self.memory = LocalMemory(owner_name=f"{self.node}:{name}")
        self._counters: dict[str, SyncCounter] = {}
        self.packets_received = 0
        self.packets_sent = 0
        network.attach(self)

    # -- counters ------------------------------------------------------------
    def counter(self, counter_id: str) -> SyncCounter:
        """The named synchronization counter (created on first use).

        Counter identifiers are agreed between senders and this
        receiver when the fixed communication pattern is established
        (§IV.A); creating them lazily keeps that setup code simple.
        """
        c = self._counters.get(counter_id)
        if c is None:
            c = SyncCounter(self.sim, name=f"{self.node}:{self.name}:{counter_id}")
            self._counters[counter_id] = c
        return c

    def counters(self) -> dict[str, SyncCounter]:
        return dict(self._counters)

    # -- delivery (called by the network at arrival time) ---------------------
    def receive(self, packet: Packet) -> None:
        self.packets_received += 1
        if packet.kind is PacketKind.WRITE:
            self._receive_write(packet)
        elif packet.kind is PacketKind.ACCUM:
            self._receive_accum(packet)
        elif packet.kind is PacketKind.FIFO:
            self._receive_fifo(packet)
        else:  # pragma: no cover - enum is closed
            raise AssertionError(f"unknown packet kind {packet.kind!r}")

    def _receive_write(self, packet: Packet) -> None:
        if packet.address is not None:
            self.memory.write(packet.address, packet.payload)
        if packet.counter_id is not None:
            self.counter(packet.counter_id).increment()

    def _receive_accum(self, packet: Packet) -> None:
        raise TypeError(
            f"client {self.name!r} at {self.node} is not an accumulation "
            "memory and cannot accept accumulation packets"
        )

    def _receive_fifo(self, packet: Packet) -> None:
        raise TypeError(
            f"client {self.name!r} at {self.node} has no hardware message "
            "FIFO"
        )

    # -- sending ---------------------------------------------------------------
    def inject(self, packet: Packet) -> Event:
        """Hand a fully formed packet to the network (no overhead here;
        subclasses charge their packet-assembly cost first)."""
        if packet.src_node != self.node or packet.src_client != self.name:
            raise ValueError(
                f"packet source {packet.src_node}:{packet.src_client} does "
                f"not match injecting client {self.node}:{self.name}"
            )
        self.packets_sent += 1
        return self.network.inject(packet)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<{type(self).__name__} {self.name!r} at {self.node}>"
