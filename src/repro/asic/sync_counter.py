"""Synchronization counters (§III.B).

Every network client contains a set of synchronization counters.  Write
and accumulation packets are labelled with a counter identifier; once
the receiver's memory has been updated with the packet's payload, the
selected counter is incremented.  Clients poll these counters to
determine when all data required for a computation has arrived — the
basis of the *counted remote write* paradigm.

The model represents a counter as a monotonically increasing integer
with threshold events: ``wait_for(n)`` returns an event that fires the
instant the count reaches ``n``.  The *poll cost* (42 ns for a local
slice poll, larger for accumulation-memory counters polled across the
on-chip ring) is charged by the polling client, not here, because it
depends on who is polling.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.engine.event import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.simulator import Simulator


class SyncCounter:
    """One hardware synchronization counter."""

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self._count = 0
        self._epoch = 0
        self._waiters: dict[int, Event] = {}
        self.total_increments = 0

    @property
    def count(self) -> int:
        """Current value."""
        return self._count

    @property
    def epoch(self) -> int:
        """Number of times the counter has been reset (for reuse checks)."""
        return self._epoch

    def increment(self, n: int = 1) -> None:
        """Add ``n`` arriving packets' worth of count."""
        if n < 1:
            raise ValueError(f"increment must be >= 1, got {n}")
        self._count += n
        self.total_increments += n
        # Fire every threshold now satisfied.  Iterate over a snapshot:
        # firing may synchronously register new waiters.
        ready = [t for t in self._waiters if t <= self._count]
        for t in sorted(ready):
            self._waiters.pop(t).succeed(self.sim.now)

    def wait_for(self, target: int) -> Event:
        """Event firing when the count reaches ``target``.

        Multiple waiters on the same target share one event.  A target
        already reached yields an already-triggered event (the caller's
        poll cost still applies on top).
        """
        if target < 0:
            raise ValueError(f"target must be >= 0, got {target}")
        if self._count >= target:
            ev = Event(self.sim)
            ev.succeed(self.sim.now)
            return ev
        ev = self._waiters.get(target)
        if ev is None:
            ev = Event(self.sim)
            self._waiters[target] = ev
        return ev

    def pending_targets(self) -> list[int]:
        """Thresholds with waiters still blocked, sorted ascending.

        Every pending target must exceed :attr:`count` — a waiter at or
        below the current count would mean a missed wakeup, which is
        exactly what the sync-counter-consistency watchdog checks.
        """
        return sorted(self._waiters)

    def reset(self) -> None:
        """Zero the counter for the next communication phase.

        Counters are reset between time-step phases once their expected
        packet count has been consumed.  Resetting with waiters still
        pending indicates a software bug (a phase ended while someone
        still expected packets), so it raises.
        """
        if self._waiters:
            pending = sorted(self._waiters)
            raise RuntimeError(
                f"reset of counter {self.name!r} with waiters pending at "
                f"thresholds {pending} (count={self._count})"
            )
        self._count = 0
        self._epoch += 1

    def __repr__(self) -> str:  # pragma: no cover
        return f"<SyncCounter {self.name!r} count={self._count}>"
