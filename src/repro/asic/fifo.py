"""The hardware-managed message FIFO (§III.C).

Each processing slice contains a circular FIFO within its local memory
that can receive arbitrary network messages — the escape hatch for
communication that cannot be formulated as counted remote writes
(migration is the one large consumer, §IV.B.5).  The Tensilica core
polls the tail pointer to detect new messages and advances the head
pointer as messages are consumed.  If the FIFO fills, backpressure is
exerted into the network; software must keep draining to avoid
deadlock.

The model keeps an explicit ring of ``capacity`` entries.  When a packet
arrives at a full FIFO it is parked on a network-side overflow queue and
a backpressure stall is recorded; parked packets enter the ring as
space frees.  (We account the stall rather than propagating it link by
link — the paper's software is engineered so the FIFO never fills in
steady state, and the tests assert our workloads keep it that way.)
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Optional

from repro.engine.event import Event
from repro.network.packet import Packet

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.simulator import Simulator

DEFAULT_FIFO_CAPACITY = 64


class MessageFifo:
    """Circular message FIFO with tail-pointer polling semantics."""

    def __init__(
        self,
        sim: "Simulator",
        capacity: int = DEFAULT_FIFO_CAPACITY,
        name: str = "",
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._ring: deque[Packet] = deque()
        self._overflow: deque[Packet] = deque()
        self._waiters: deque[Event] = deque()
        self.total_received = 0
        self.total_consumed = 0
        self.backpressure_stalls = 0
        self.high_watermark = 0

    @property
    def occupancy(self) -> int:
        """Messages currently between head and tail pointers."""
        return len(self._ring)

    @property
    def is_full(self) -> bool:
        return len(self._ring) >= self.capacity

    @property
    def overflow_occupancy(self) -> int:
        """Packets parked on the network-side overflow queue (depth
        probe: nonzero means backpressure is being exerted right now)."""
        return len(self._overflow)

    @property
    def pending_waiters(self) -> int:
        """Pollers currently blocked on the tail pointer."""
        return len(self._waiters)

    # -- network side -------------------------------------------------------
    def push(self, packet: Packet) -> None:
        """A message packet arrives from the network."""
        self.total_received += 1
        if self._waiters:
            # A poller is already blocked on the tail pointer: hand over.
            self.total_consumed += 1
            self._waiters.popleft().succeed(packet)
            return
        if self.is_full:
            self.backpressure_stalls += 1
            self._overflow.append(packet)
            return
        self._ring.append(packet)
        self.high_watermark = max(self.high_watermark, len(self._ring))

    # -- software side --------------------------------------------------------
    def poll(self) -> Event:
        """Event firing with the next message (tail-pointer poll).

        The polling core charges its own ``FIFO_POLL_NS`` on success
        and ``FIFO_PROCESS_NS`` per message; this method only models
        availability.
        """
        ev = Event(self.sim, name=f"fifo-poll({self.name})")
        pkt = self.try_poll()
        if pkt is not None:
            ev.succeed(pkt)
        else:
            self._waiters.append(ev)
        return ev

    def cancel(self, ev: Event) -> None:
        """Withdraw a pending :meth:`poll` waiter.

        Needed when software stops waiting on the FIFO for another
        reason (e.g. the migration flush counter fired); an abandoned
        waiter would silently swallow the next message.
        """
        try:
            self._waiters.remove(ev)
        except ValueError:
            pass

    def try_poll(self) -> Optional[Packet]:
        """Non-blocking poll: next message or ``None`` if empty."""
        if not self._ring:
            return None
        pkt = self._ring.popleft()
        self.total_consumed += 1
        # Head advanced: admit one parked packet, if any.
        if self._overflow:
            self._ring.append(self._overflow.popleft())
            self.high_watermark = max(self.high_watermark, len(self._ring))
        return pkt

    def __len__(self) -> int:
        return len(self._ring) + len(self._overflow)
