"""Client local memories with pre-allocated receive buffers (§IV.A).

Anton's software pre-allocates receive-side storage for almost every
piece of data to be communicated, before the simulation begins, and
avoids changing those addresses.  The model mirrors this: a
:class:`LocalMemory` holds named buffers (numpy arrays or plain slot
lists) allocated up front; remote writes land at (buffer, offset) and
it is an error to write to an unallocated buffer or out of bounds —
exactly the failure a mis-programmed remote write would cause on the
real machine.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

import numpy as np


class Buffer:
    """One pre-allocated receive buffer: a fixed number of slots."""

    __slots__ = ("name", "slots", "writes")

    def __init__(self, name: str, num_slots: int) -> None:
        if num_slots < 1:
            raise ValueError(f"buffer {name!r} needs >= 1 slot, got {num_slots}")
        self.name = name
        self.slots: list[Any] = [None] * num_slots
        self.writes = 0

    def __len__(self) -> int:
        return len(self.slots)

    def write(self, offset: int, value: Any) -> None:
        if not 0 <= offset < len(self.slots):
            raise IndexError(
                f"remote write to {self.name!r} offset {offset} out of "
                f"bounds (size {len(self.slots)})"
            )
        self.slots[offset] = value
        self.writes += 1

    def read(self, offset: int) -> Any:
        if not 0 <= offset < len(self.slots):
            raise IndexError(
                f"read from {self.name!r} offset {offset} out of bounds "
                f"(size {len(self.slots)})"
            )
        return self.slots[offset]

    def filled(self) -> list[Any]:
        """All written slots, in offset order (None slots skipped)."""
        return [s for s in self.slots if s is not None]

    def clear(self) -> None:
        """Reset all slots for the next phase (addresses are reused)."""
        for i in range(len(self.slots)):
            self.slots[i] = None
        # ``writes`` is cumulative on purpose (statistics).


class LocalMemory:
    """A client's remotely writable local memory."""

    def __init__(self, owner_name: str = "") -> None:
        self.owner_name = owner_name
        self._buffers: dict[str, Buffer] = {}

    def allocate(self, name: str, num_slots: int) -> Buffer:
        """Pre-allocate a named receive buffer.

        Re-allocating an existing name is an error: fixed communication
        patterns require fixed addresses (§IV.A).
        """
        if name in self._buffers:
            raise ValueError(f"buffer {name!r} already allocated in "
                             f"{self.owner_name!r}")
        buf = Buffer(name, num_slots)
        self._buffers[name] = buf
        return buf

    def buffer(self, name: str) -> Buffer:
        try:
            return self._buffers[name]
        except KeyError:
            raise KeyError(
                f"remote write to unallocated buffer {name!r} in "
                f"{self.owner_name!r}; receive storage must be "
                "pre-allocated before communication begins"
            ) from None

    def has_buffer(self, name: str) -> bool:
        return name in self._buffers

    def write(self, address: tuple[str, int], value: Any) -> None:
        """Perform a remote write at ``address = (buffer, offset)``."""
        name, offset = address
        self.buffer(name).write(offset, value)

    def read(self, address: tuple[str, int]) -> Any:
        name, offset = address
        return self.buffer(name).read(offset)

    def buffers(self) -> Iterator[Buffer]:
        return iter(self._buffers.values())

    def __contains__(self, name: str) -> bool:
        return name in self._buffers
