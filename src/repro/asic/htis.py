"""The high-throughput interaction subsystem (HTIS) (§II, §IV.B.1, Fig. 9).

The HTIS contains specialised hardwired pipelines for pairwise
interactions; it computes the range-limited interactions and performs
charge spreading and force interpolation.  As a network client it

* receives multicast position (and grid-potential) packets into
  buffers organised by node of origin, each guarded by a
  synchronization counter with a fixed expected packet count;
* is processed under an embedded controller: buffers are consumed in a
  software-specified order, except that buffers placed in a
  *high-priority queue* are processed as soon as all of their packets
  have arrived (used for positions whose force results must travel the
  farthest, hiding those sends behind the remaining computation);
* streams result (force/charge) packets back into the network with its
  hardware packet-assembly support.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Generator, Iterable, Optional

from repro.asic.client import NetworkClient
from repro.engine.event import Event
from repro.engine.resource import Resource
from repro.network.packet import AccumPacket, Packet, WritePacket
from repro.topology.torus import NodeCoord

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.simulator import Simulator
    from repro.network.network import Network

#: Hardware packet formation in the HTIS output stage; cheaper than the
#: slice's software-driven 36 ns because no core is involved.
HTIS_SEND_NS = 20.0

#: Pairwise-interaction throughput of one HTIS: 32 pairwise point
#: interaction pipelines at 800 MHz (Larson et al., HPCA 2008) ≈ 25.6
#: interactions per nanosecond.
HTIS_PAIRS_PER_NS = 25.6


@dataclass
class InteractionBuffer:
    """One origin-node buffer inside the HTIS."""

    name: str
    origin: NodeCoord
    expected_packets: int
    priority: bool = False
    received: int = 0
    processed: bool = False

    @property
    def complete(self) -> bool:
        return self.received >= self.expected_packets


class HTIS(NetworkClient):
    """High-throughput interaction subsystem of one node."""

    def __init__(
        self,
        sim: "Simulator",
        network: "Network",
        node: "NodeCoord | int",
        pairs_per_ns: float = HTIS_PAIRS_PER_NS,
    ) -> None:
        super().__init__(sim, network, node, "htis")
        self.pairs_per_ns = pairs_per_ns
        #: the array of pairwise pipelines, modelled as a single FCFS
        #: server whose service time encodes aggregate throughput
        self.pipeline = Resource(sim, capacity=1, name=f"{self.name}.pipes")
        #: output packet-assembly stage
        self.sender = Resource(sim, capacity=1, name=f"{self.name}.send")
        self._buffers: dict[str, InteractionBuffer] = {}

    # -- buffer management -----------------------------------------------
    def define_buffer(
        self,
        name: str,
        origin: "NodeCoord | int",
        expected_packets: int,
        priority: bool = False,
    ) -> InteractionBuffer:
        """Pre-allocate an origin buffer with a fixed expected count.

        The expected count is fixed per communication pattern and sized
        for worst-case temporal fluctuations in atom density (§IV.B.1).
        """
        if name in self._buffers:
            raise ValueError(f"HTIS buffer {name!r} already defined")
        if expected_packets < 1:
            raise ValueError("expected_packets must be >= 1")
        buf = InteractionBuffer(
            name=name,
            origin=self.network.torus.coord(origin),
            expected_packets=expected_packets,
            priority=priority,
        )
        self._buffers[name] = buf
        return buf

    def buffer(self, name: str) -> InteractionBuffer:
        return self._buffers[name]

    def buffers(self) -> list[InteractionBuffer]:
        return list(self._buffers.values())

    def reset_buffers(self) -> None:
        """Prepare all buffers for the next time step (counters reset)."""
        for buf in self._buffers.values():
            buf.received = 0
            buf.processed = False
            self.counter(buf.name).reset()

    # -- delivery ------------------------------------------------------------
    def _receive_write(self, packet: Packet) -> None:
        # Writes with a counter matching a defined buffer are organised
        # by origin; other writes (e.g. grid potentials addressed to a
        # plain memory buffer) fall back to the generic path.
        if packet.counter_id is not None and packet.counter_id in self._buffers:
            buf = self._buffers[packet.counter_id]
            buf.received += 1
            if packet.address is not None:
                self.memory.write(packet.address, packet.payload)
            self.counter(packet.counter_id).increment()
        else:
            super()._receive_write(packet)

    # -- buffer scheduling ------------------------------------------------------
    def buffer_ready(self, name: str) -> Event:
        """Event firing when the named buffer's counter hits its target."""
        buf = self._buffers[name]
        return self.counter(name).wait_for(buf.expected_packets)

    def process_buffers(
        self,
        order: Iterable[str],
        work_ns: Callable[[InteractionBuffer], float],
        on_done: Optional[Callable[[InteractionBuffer], None]] = None,
    ) -> Generator[Event, Any, list[str]]:
        """Consume buffers through the pipelines; ``yield from`` this.

        Non-priority buffers are processed in ``order``; buffers marked
        ``priority`` jump the queue as soon as they are complete
        (§IV.B.1's high-priority mechanism).  Returns the realised
        processing order.

        Parameters
        ----------
        order:
            Software-specified processing order (must cover every
            defined buffer exactly once).
        work_ns:
            Maps a buffer to its pipeline occupancy in ns.
        on_done:
            Called as each buffer finishes processing; typically starts
            the force-result sends for that buffer.
        """
        order = list(order)
        missing = set(self._buffers) - set(order)
        extra = set(order) - set(self._buffers)
        if missing or extra:
            raise ValueError(
                f"processing order mismatch (missing={sorted(missing)}, "
                f"unknown={sorted(extra)})"
            )
        pending_ordered = [n for n in order if not self._buffers[n].priority]
        pending_priority = [n for n in order if self._buffers[n].priority]
        realised: list[str] = []

        while pending_ordered or pending_priority:
            # Priority buffers that are already complete win immediately.
            ready_pri = [n for n in pending_priority if self._buffers[n].complete]
            if ready_pri:
                name = ready_pri[0]
                pending_priority.remove(name)
            elif pending_ordered and self._buffers[pending_ordered[0]].complete:
                name = pending_ordered.pop(0)
            else:
                # Nothing runnable: block until the head-of-order buffer
                # or any pending priority buffer completes.
                waits = [self.buffer_ready(n) for n in pending_priority]
                if pending_ordered:
                    waits.append(self.buffer_ready(pending_ordered[0]))
                yield self.sim.any_of(waits)
                continue
            buf = self._buffers[name]
            yield from self.pipeline.use(work_ns(buf))
            buf.processed = True
            realised.append(name)
            if on_done is not None:
                on_done(buf)
        return realised

    # -- result sends -------------------------------------------------------------
    def send_accum_results(
        self,
        dst_node: "NodeCoord | int",
        accum_name: str,
        packets: int,
        *,
        counter_id: str,
        payload_bytes: int,
        address_of: Optional[Callable[[int], Any]] = None,
        payload_of: Optional[Callable[[int], Any]] = None,
    ) -> Generator[Event, Any, None]:
        """Stream ``packets`` accumulation packets to a target memory.

        Each packet occupies the output stage for ``HTIS_SEND_NS``;
        the stream is pipelined with any ongoing pipeline computation.
        """
        dst = self.network.torus.coord(dst_node)
        for i in range(packets):
            yield from self.sender.use(HTIS_SEND_NS)
            self.inject(
                AccumPacket(
                    src_node=self.node,
                    src_client=self.name,
                    dst_node=dst,
                    dst_client=accum_name,
                    payload_bytes=payload_bytes,
                    payload=payload_of(i) if payload_of else None,
                    counter_id=counter_id,
                    address=address_of(i) if address_of else ("htis-result", i),
                )
            )

    def pairs_duration_ns(self, num_pairs: float) -> float:
        """Pipeline occupancy for ``num_pairs`` pairwise interactions."""
        if num_pairs < 0:
            raise ValueError("num_pairs must be >= 0")
        return num_pairs / self.pairs_per_ns
