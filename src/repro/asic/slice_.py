"""Processing slices (§III).

A flexible subsystem contains four processing slices, each consisting
of one Tensilica core — used primarily for communication and
synchronization — and two geometry cores, which perform the bulk of the
numerical computation.  Each slice has hardware support for quickly
assembling packets and injecting them into the network, a local memory
that accepts remote writes, synchronization counters it can poll with
very low latency, and a hardware-managed message FIFO (§III.C).

The slice exposes *generator helpers* meant to be driven inside engine
processes: ``yield from slice.send_write(...)``, ``yield from
slice.poll(...)``, ``yield from slice.compute(...)``.  The Tensilica
core is a FCFS resource, so concurrent send and poll activity on one
slice serialises — which is exactly why bidirectional ping-pong runs
slightly slower than unidirectional in Fig. 5.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Iterable, Optional

from repro.asic.client import NetworkClient
from repro.asic.fifo import MessageFifo
from repro.constants import (
    ACCUM_POLL_NS,
    ACCUM_READ_NS,
    FIFO_POLL_NS,
    FIFO_PROCESS_NS,
    POLL_SUCCESS_NS,
    SLICE_SEND_NS,
)
from repro.engine.event import Event
from repro.engine.resource import Resource
from repro.network.packet import (
    AccumPacket,
    FifoPacket,
    Packet,
    PacketKind,
    WritePacket,
    payload_bytes_of,
)
from repro.topology.torus import NodeCoord

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.simulator import Simulator
    from repro.network.network import Network


class GeometryCore:
    """One of the two numerical cores in a slice: a FCFS compute server."""

    def __init__(self, sim: "Simulator", name: str) -> None:
        self.sim = sim
        self.name = name
        self.server = Resource(sim, capacity=1, name=name)
        self.busy_ns = 0.0

    def compute(self, duration_ns: float) -> Generator[Event, Any, None]:
        """Occupy this core for ``duration_ns``.  ``yield from`` this."""
        self.busy_ns += duration_ns
        yield from self.server.use(duration_ns)


class ProcessingSlice(NetworkClient):
    """One processing slice: Tensilica core + two geometry cores."""

    def __init__(
        self,
        sim: "Simulator",
        network: "Network",
        node: "NodeCoord | int",
        index: int,
        fifo_capacity: int = 64,
    ) -> None:
        if not 0 <= index <= 3:
            raise ValueError(f"slice index must be 0..3, got {index}")
        super().__init__(sim, network, node, f"slice{index}")
        self.index = index
        self.tensilica = Resource(sim, capacity=1, name=f"{self.name}.ts")
        self.geometry = (
            GeometryCore(sim, f"{self.name}.gc0"),
            GeometryCore(sim, f"{self.name}.gc1"),
        )
        self.fifo = MessageFifo(sim, capacity=fifo_capacity, name=self.name)

    # -- delivery ---------------------------------------------------------
    def _receive_fifo(self, packet: Packet) -> None:
        self.fifo.push(packet)

    # -- sending ------------------------------------------------------------
    def _assemble_and_inject(self, packet: Packet) -> Generator[Event, Any, Event]:
        """Occupy the Tensilica for packet assembly, then inject."""
        begin = self.sim.now
        yield from self.tensilica.use(SLICE_SEND_NS)
        done = self.inject(packet)
        fl = self.network.flight
        if fl.enabled:
            fl.software_send(packet, begin, self.sim.now)
        return done

    def send_write(
        self,
        dst_node: "NodeCoord | int",
        dst_client: str,
        *,
        counter_id: Optional[str] = None,
        address: Optional[tuple[str, int]] = None,
        payload: Any = None,
        payload_bytes: Optional[int] = None,
        in_order: bool = False,
        pattern_id: Optional[int] = None,
    ) -> Generator[Event, Any, Event]:
        """Send one (possibly multicast) counted remote write.

        Returns the network's delivery event so callers that care about
        completion can wait on it; counted-remote-write receivers
        normally just poll their counter instead.
        """
        nbytes = payload_bytes if payload_bytes is not None else payload_bytes_of(payload)
        packet = WritePacket(
            src_node=self.node,
            src_client=self.name,
            dst_node=self.network.torus.coord(dst_node),
            dst_client=dst_client,
            payload_bytes=nbytes,
            payload=payload,
            counter_id=counter_id,
            address=address,
            in_order=in_order,
            pattern_id=pattern_id,
        )
        return (yield from self._assemble_and_inject(packet))

    def send_accum(
        self,
        dst_node: "NodeCoord | int",
        accum_name: str,
        *,
        counter_id: str,
        address: Any,
        payload: Any = None,
        payload_bytes: Optional[int] = None,
        pattern_id: Optional[int] = None,
    ) -> Generator[Event, Any, Event]:
        """Send one accumulation packet (+= at the target address)."""
        nbytes = payload_bytes if payload_bytes is not None else payload_bytes_of(payload)
        packet = AccumPacket(
            src_node=self.node,
            src_client=self.name,
            dst_node=self.network.torus.coord(dst_node),
            dst_client=accum_name,
            payload_bytes=nbytes,
            payload=payload,
            counter_id=counter_id,
            address=address,
            pattern_id=pattern_id,
        )
        return (yield from self._assemble_and_inject(packet))

    def send_fifo_message(
        self,
        dst_node: "NodeCoord | int",
        dst_slice: str,
        *,
        payload: Any = None,
        payload_bytes: Optional[int] = None,
        in_order: bool = False,
    ) -> Generator[Event, Any, Event]:
        """Send an arbitrary message to a remote slice's hardware FIFO."""
        nbytes = payload_bytes if payload_bytes is not None else payload_bytes_of(payload)
        packet = FifoPacket(
            src_node=self.node,
            src_client=self.name,
            dst_node=self.network.torus.coord(dst_node),
            dst_client=dst_slice,
            payload_bytes=nbytes,
            payload=payload,
            in_order=in_order,
        )
        return (yield from self._assemble_and_inject(packet))

    # -- polling ----------------------------------------------------------
    def poll(self, counter_id: str, target: int) -> Generator[Event, Any, float]:
        """Poll a *local* synchronization counter until ``target``.

        Models Anton's low-latency local poll: the slice blocks until
        the counter reaches the target, then pays the successful-poll
        cost (42 ns) on its Tensilica core.  Returns the simulated time
        at which the data became usable.
        """
        yield self.counter(counter_id).wait_for(target)
        trigger = self.sim.now
        yield from self.tensilica.use(POLL_SUCCESS_NS)
        fl = self.network.flight
        if fl.enabled:
            fl.poll_completed(
                self.node, self.name, counter_id, target, trigger, self.sim.now
            )
        return self.sim.now

    def poll_accum(
        self, accum: "NetworkClient", counter_id: str, target: int
    ) -> Generator[Event, Any, float]:
        """Poll an accumulation-memory counter across the on-chip ring.

        Accumulation memories cannot poll their own counters; a slice
        on the same node polls them over the ring, at noticeably higher
        cost than a local poll (§III.B, §IV.B.4).
        """
        if accum.node != self.node:
            raise ValueError("accumulation counters are polled by slices on the same node")
        yield accum.counter(counter_id).wait_for(target)
        yield from self.tensilica.use(ACCUM_POLL_NS)
        return self.sim.now

    def read_accum_lines(self, num_lines: int) -> Generator[Event, Any, None]:
        """Read ``num_lines`` 32-byte lines from a local accumulation
        memory across the ring (post-poll data retrieval, Fig. 9)."""
        if num_lines < 0:
            raise ValueError("num_lines must be >= 0")
        if num_lines:
            yield from self.tensilica.use(num_lines * ACCUM_READ_NS)

    def poll_fifo(self) -> Generator[Event, Any, Packet]:
        """Poll the hardware message FIFO for the next message.

        Pays the tail-pointer poll cost, then the per-message software
        processing cost on the Tensilica core.
        """
        ev = self.fifo.poll()
        yield ev
        packet = ev.value
        yield from self.tensilica.use(FIFO_POLL_NS + FIFO_PROCESS_NS)
        return packet

    # -- compute -------------------------------------------------------------
    def compute(self, duration_ns: float, core: int = 0) -> Generator[Event, Any, None]:
        """Run numerical work on geometry core ``core`` for ``duration_ns``."""
        yield from self.geometry[core].compute(duration_ns)

    def tensilica_work(self, duration_ns: float) -> Generator[Event, Any, None]:
        """Occupy the Tensilica core (bookkeeping, data marshalling)."""
        yield from self.tensilica.use(duration_ns)
