"""Models of the network clients on an Anton ASIC (§II, §III, Fig. 1).

Each node hosts seven local memories / clients: one per processing
slice (four), one for the HTIS, and two accumulation memories.  All of
them can directly accept write packets issued by other clients
(Fig. 3); all of them carry synchronization counters (§III.B).
"""

from repro.asic.accumulation import AccumulationMemory
from repro.asic.client import NetworkClient
from repro.asic.fifo import MessageFifo
from repro.asic.htis import HTIS, InteractionBuffer
from repro.asic.memory import LocalMemory
from repro.asic.node import AntonNode, Machine, build_machine
from repro.asic.slice_ import GeometryCore, ProcessingSlice
from repro.asic.sync_counter import SyncCounter

__all__ = [
    "AccumulationMemory",
    "AntonNode",
    "Machine",
    "GeometryCore",
    "HTIS",
    "InteractionBuffer",
    "LocalMemory",
    "MessageFifo",
    "NetworkClient",
    "ProcessingSlice",
    "SyncCounter",
    "build_machine",
]
