"""Accumulation memories (§II, §III.A).

Each ASIC includes two accumulation memories used to sum forces and
charges.  They cannot send packets, but accept a special accumulation
packet that **adds** its payload (in 4-byte quantities) to the value
currently stored at the targeted address.  Their synchronization
counters are polled by processing slices on the same node across the
on-chip network (higher polling latency than a slice-local poll).

The model keeps real numerical state: each address holds a float or a
numpy array, and arriving accumulation packets add their payload
value.  Integration tests use this to check that force accumulation
over the network is *numerically* identical to a serial reduction
(up to floating-point associativity, which we sidestep by comparing
with a tolerance).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

import numpy as np

from repro.asic.client import NetworkClient
from repro.network.packet import Packet
from repro.topology.torus import NodeCoord

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.simulator import Simulator
    from repro.network.network import Network


class AccumulationMemory(NetworkClient):
    """One accumulation memory: write-accumulate storage + counters."""

    def __init__(
        self,
        sim: "Simulator",
        network: "Network",
        node: "NodeCoord | int",
        index: int,
    ) -> None:
        if index not in (0, 1):
            raise ValueError(f"accumulation memory index must be 0 or 1, got {index}")
        super().__init__(sim, network, node, f"accum{index}")
        self.index = index
        self._values: dict[Any, Any] = {}
        self.accum_packets = 0

    # -- storage -----------------------------------------------------------
    def value(self, address: Any) -> Any:
        """Current accumulated value at ``address`` (0.0 if untouched)."""
        return self._values.get(address, 0.0)

    def clear(self, address: Optional[Any] = None) -> None:
        """Zero one address, or the whole memory when ``address`` is None.

        Software clears accumulation regions between time-step phases;
        the cost of doing so is part of the compute model, not charged
        here.
        """
        if address is None:
            self._values.clear()
        else:
            self._values.pop(address, None)

    def addresses(self) -> list[Any]:
        return list(self._values)

    # -- delivery -------------------------------------------------------------
    def _receive_accum(self, packet: Packet) -> None:
        self.accum_packets += 1
        if packet.address is None:
            raise ValueError("accumulation packet without a target address")
        payload = packet.payload
        if payload is not None:
            if isinstance(payload, list):
                # A packed packet: a run of (key, quantity) pairs, each
                # accumulated at its own fine-grained address — how the
                # hardware adds a payload "in 4-byte quantities" across
                # an address range (§III.A).
                for key, quantity in payload:
                    self._accumulate(("item", key), quantity)
            else:
                self._accumulate(packet.address, payload)
        if packet.counter_id is not None:
            self.counter(packet.counter_id).increment()

    def _accumulate(self, address: Any, payload: Any) -> None:
        current = self._values.get(address)
        if current is None:
            if isinstance(payload, np.ndarray):
                self._values[address] = payload.astype(np.float64, copy=True)
            else:
                self._values[address] = float(payload)
        else:
            if isinstance(current, np.ndarray):
                np.add(current, payload, out=current)
            else:
                self._values[address] = current + float(payload)

    def _receive_fifo(self, packet: Packet) -> None:
        raise TypeError("accumulation memories have no message FIFO")
