"""Declarative, serializable fault schedules.

A :class:`FaultPlan` describes *what* goes wrong on the fabric and
*when*, without referencing any runtime object: link selectors are
strings, times are simulated nanoseconds, randomness is pinned by a
plan seed plus per-fault derived seeds.  Two runs that share a plan
(and a workload seed) observe exactly the same corruptions, in the
same order, on the same links — which is what makes fault sweeps
resumable and cacheable through the PR-4 runner.

Link selectors
--------------
``"*"``        every torus link
``"x"``        every link in dimension ``x`` (likewise ``y``/``z``)
``"x+"``       only positive-going ``x`` links (likewise ``x-`` …)

Selectors deliberately stop at (dimension, sign) granularity: the
studies in this repo stress classes of links, and coarse selectors
keep plans shape-independent so one plan serves a whole sweep grid.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field, fields
from typing import Iterable, Optional, Sequence, Tuple

_SEED_DOMAIN = b"repro-fault-seed\x00"

#: Calibrated reliability-protocol timings (simulated ns).  Detection
#: is modelled on a CRC check completing as the tail flit arrives plus
#: one reverse wire hop for the NAK; the backoff base is one link
#: adapter traversal.  These defaults live on the plan (not hardcoded
#: in the session) so studies can explore the protocol envelope.
DEFAULT_DETECT_NS = 10.0
DEFAULT_NAK_NS = 10.0
DEFAULT_BACKOFF_BASE_NS = 20.0
DEFAULT_MAX_RETRIES = 8

_DIMS = ("x", "y", "z")
_SIGNS = ("+", "-")


def _check_selector(links: str) -> None:
    if links == "*":
        return
    if links in _DIMS:
        return
    if len(links) == 2 and links[0] in _DIMS and links[1] in _SIGNS:
        return
    raise ValueError(
        f"bad link selector {links!r}: expected '*', a dimension "
        f"('x'|'y'|'z'), or a signed dimension ('x+', 'z-', ...)"
    )


def selector_matches(links: str, dim: str, sign: int) -> bool:
    """Does selector ``links`` cover a link in ``dim`` going ``sign``?"""
    if links == "*":
        return True
    if links == dim:
        return True
    return len(links) == 2 and links[0] == dim and \
        links[1] == ("+" if sign > 0 else "-")


def _check_window(start_ns: float, end_ns: float) -> None:
    if not (0.0 <= start_ns < end_ns):
        raise ValueError(
            f"bad fault window [{start_ns}, {end_ns}): need 0 <= start < end"
        )


@dataclass(frozen=True)
class BitError:
    """Random bit corruption on matching links.

    ``ber`` is the per-wire-bit error probability; a packet of ``n``
    wire bits is corrupted (CRC check fails, triggering a
    retransmission) with probability ``1 - (1 - ber)**n``.  For unit
    tests that need exact, seed-independent behaviour,
    ``corrupt_attempts`` deterministically corrupts the first *k*
    transmission attempts of every matching traversal instead.
    """

    links: str = "*"
    ber: float = 0.0
    corrupt_attempts: int = 0

    def __post_init__(self) -> None:
        _check_selector(self.links)
        if not (0.0 <= self.ber < 1.0):
            raise ValueError(f"ber must be in [0, 1), got {self.ber}")
        if self.corrupt_attempts < 0:
            raise ValueError("corrupt_attempts must be >= 0")


@dataclass(frozen=True)
class Degradation:
    """Transient link degradation over a time window.

    ``bandwidth_factor`` stretches channel occupancy (serialization
    time), ``latency_factor`` stretches the per-hop link cost; both
    must be >= 1 (a fault never speeds a link up).
    """

    links: str = "*"
    start_ns: float = 0.0
    end_ns: float = math.inf
    bandwidth_factor: float = 1.0
    latency_factor: float = 1.0

    def __post_init__(self) -> None:
        _check_selector(self.links)
        _check_window(self.start_ns, self.end_ns)
        if self.bandwidth_factor < 1.0 or self.latency_factor < 1.0:
            raise ValueError("degradation factors must be >= 1.0")

    def active(self, now: float) -> bool:
        return self.start_ns <= now < self.end_ns


@dataclass(frozen=True)
class LinkDown:
    """Hard outage: matching links accept no new packets in the window.

    Traffic queued for a downed link waits (the transit re-arms itself
    for ``end_ns``) rather than being dropped — matching real link
    retraining, where the send buffer stalls until the link comes back.
    """

    links: str = "*"
    start_ns: float = 0.0
    end_ns: float = math.inf

    def __post_init__(self) -> None:
        _check_selector(self.links)
        _check_window(self.start_ns, self.end_ns)

    def active(self, now: float) -> bool:
        return self.start_ns <= now < self.end_ns


@dataclass(frozen=True)
class NodeStall:
    """A node pauses packet forwarding/injection for a time window."""

    node: Tuple[int, int, int] = (0, 0, 0)
    start_ns: float = 0.0
    end_ns: float = math.inf

    def __post_init__(self) -> None:
        _check_window(self.start_ns, self.end_ns)
        object.__setattr__(self, "node", tuple(self.node))

    def active(self, now: float) -> bool:
        return self.start_ns <= now < self.end_ns


_FAULT_KINDS = {
    "bit_error": BitError,
    "degradation": Degradation,
    "link_down": LinkDown,
    "node_stall": NodeStall,
}


def _encode_fault(obj) -> dict:
    doc = {"kind": next(k for k, cls in _FAULT_KINDS.items()
                        if isinstance(obj, cls))}
    for f in fields(obj):
        value = getattr(obj, f.name)
        if isinstance(value, tuple):
            value = list(value)
        elif value == math.inf:
            value = "inf"
        doc[f.name] = value
    return doc


def _decode_fault(doc: dict):
    doc = dict(doc)
    cls = _FAULT_KINDS[doc.pop("kind")]
    for key, value in doc.items():
        if value == "inf":
            doc[key] = math.inf
        elif isinstance(value, list):
            doc[key] = tuple(value)
    return cls(**doc)


@dataclass(frozen=True)
class FaultPlan:
    """A complete, deterministic fault schedule for one run.

    The empty plan (no fault entries) is inert: the network never
    consults a disabled session on its hot path, so an empty plan is
    byte-identical to no plan at all.
    """

    seed: int = 0
    max_retries: int = DEFAULT_MAX_RETRIES
    detect_ns: float = DEFAULT_DETECT_NS
    nak_ns: float = DEFAULT_NAK_NS
    backoff_base_ns: float = DEFAULT_BACKOFF_BASE_NS
    #: Cap on the exponential backoff (``None`` = uncapped).  Studies
    #: that sweep into high-BER regimes set this so a long retry train
    #: costs linearly, as real truncated-binary-exponential senders do.
    backoff_max_ns: Optional[float] = None
    on_exhaust: str = "error"  # "error" | "drop"
    bit_errors: Tuple[BitError, ...] = ()
    degradations: Tuple[Degradation, ...] = ()
    link_downs: Tuple[LinkDown, ...] = ()
    node_stalls: Tuple[NodeStall, ...] = ()

    def __post_init__(self) -> None:
        if self.on_exhaust not in ("error", "drop"):
            raise ValueError(
                f"on_exhaust must be 'error' or 'drop', got {self.on_exhaust!r}"
            )
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        object.__setattr__(self, "bit_errors", tuple(self.bit_errors))
        object.__setattr__(self, "degradations", tuple(self.degradations))
        object.__setattr__(self, "link_downs", tuple(self.link_downs))
        object.__setattr__(self, "node_stalls", tuple(self.node_stalls))

    # -- queries ---------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """True when the plan contains any fault at all."""
        return bool(self.bit_errors or self.degradations or
                    self.link_downs or self.node_stalls)

    def faults(self) -> Iterable:
        yield from self.bit_errors
        yield from self.degradations
        yield from self.link_downs
        yield from self.node_stalls

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": "repro-fault-plan/1",
            "seed": self.seed,
            "max_retries": self.max_retries,
            "detect_ns": self.detect_ns,
            "nak_ns": self.nak_ns,
            "backoff_base_ns": self.backoff_base_ns,
            "backoff_max_ns": self.backoff_max_ns,
            "on_exhaust": self.on_exhaust,
            "faults": [_encode_fault(f) for f in self.faults()],
        }

    @classmethod
    def from_dict(cls, doc: dict) -> "FaultPlan":
        if doc.get("schema") != "repro-fault-plan/1":
            raise ValueError(f"not a fault plan: schema={doc.get('schema')!r}")
        buckets = {"bit_error": [], "degradation": [],
                   "link_down": [], "node_stall": []}
        for raw in doc.get("faults", []):
            buckets[raw["kind"]].append(_decode_fault(raw))
        return cls(
            seed=doc.get("seed", 0),
            max_retries=doc.get("max_retries", DEFAULT_MAX_RETRIES),
            detect_ns=doc.get("detect_ns", DEFAULT_DETECT_NS),
            nak_ns=doc.get("nak_ns", DEFAULT_NAK_NS),
            backoff_base_ns=doc.get("backoff_base_ns",
                                    DEFAULT_BACKOFF_BASE_NS),
            backoff_max_ns=doc.get("backoff_max_ns"),
            on_exhaust=doc.get("on_exhaust", "error"),
            bit_errors=tuple(buckets["bit_error"]),
            degradations=tuple(buckets["degradation"]),
            link_downs=tuple(buckets["link_down"]),
            node_stalls=tuple(buckets["node_stall"]),
        )

    def canonical(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    @property
    def plan_hash(self) -> str:
        return hashlib.sha256(self.canonical().encode()).hexdigest()[:16]

    def derived_seed(self, *scope: object) -> int:
        """A stable 63-bit seed for one fault scope (e.g. a link key).

        Every consumer of randomness under this plan draws from its own
        derived stream, so adding a fault (or a link) never shifts the
        random numbers any *other* fault observes.
        """
        h = hashlib.sha256(_SEED_DOMAIN + self.canonical().encode())
        for part in scope:
            h.update(b"\x00" + repr(part).encode())
        return int.from_bytes(h.digest()[:8], "big") >> 1


def single_link_fault_plan(ber: float, *, links: str = "*", seed: int = 0,
                           max_retries: int = DEFAULT_MAX_RETRIES,
                           on_exhaust: str = "error") -> FaultPlan:
    """Convenience: a plan with one uniform bit-error-rate fault."""
    return FaultPlan(seed=seed, max_retries=max_retries,
                     on_exhaust=on_exhaust,
                     bit_errors=(BitError(links=links, ber=ber),))
