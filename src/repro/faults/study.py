"""Degradation studies: what fault injection does to Anton's numbers.

Two experiment workloads (registered as ``fault_sensitivity`` and
``link_degradation`` in :mod:`repro.runner.experiments`) plus the
crossover analysis the ISSUE asks for: the paper's whole argument is
that Anton wins on *latency per message*, so the interesting question
under faults is at what bit-error rate the retry-laden torus stops
beating the DDR2 InfiniBand cluster baseline of
:mod:`repro.baselines.cluster`.

Both workloads run the same all-to-one incast of counted writes (the
heaviest traffic the small torus produces, so every link class carries
packets and even modest BERs yield retransmissions), once per
experiment spec, under a plan built from the spec's extras — which
keeps the experiments pure functions of their spec: cacheable,
sweepable, and byte-reproducible through the PR-4 runner.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.faults.plan import BitError, Degradation, FaultPlan, LinkDown
from repro.faults.session import FaultSession, use_faults
from repro.runner.result import Measurement, Outcome
from repro.runner.spec import ExperimentSpec

#: Default incast payload.  256 B puts ~2300 bits on the wire per
#: packet, so even ber=1e-4 corrupts ~20% of traversals — small sweeps
#: reliably observe retransmissions without waiting for rare events.
DEFAULT_PAYLOAD = 256


def incast_under_faults(
    spec: ExperimentSpec, plan: FaultPlan
) -> Tuple[float, FaultSession, int]:
    """Run the all-to-one incast under ``plan``.

    Returns ``(elapsed_ns, session, senders)``.  The machine is built
    inside :func:`~repro.faults.session.use_faults`, so the network
    consults the session on every hop; metrics flow to the ambient
    registry when one is installed (``repro sweep --metrics``).
    """
    from repro.asic.node import build_machine
    from repro.engine.simulator import Simulator

    payload = spec.payload or DEFAULT_PAYLOAD
    sim = Simulator()
    session = FaultSession(plan)
    with use_faults(session):
        machine = build_machine(sim, *spec.shape)
    target = machine.torus.coord((0, 0, 0))
    dst = machine.node(target).slice(0)
    senders = [
        machine.node(c).slice(0)
        for c in machine.torus.nodes()
        if c != target
    ]
    dst.memory.allocate("sink", len(senders))

    def sender(s, slot):
        for _ in range(spec.rounds):
            yield from s.send_write(
                target, dst.name, counter_id="sink", address=("sink", slot),
                payload_bytes=payload,
            )

    def receiver():
        yield from dst.poll("sink", len(senders) * spec.rounds)

    start = sim.now
    procs = [sim.process(sender(s, i)) for i, s in enumerate(senders)]
    procs.append(sim.process(receiver()))
    sim.run(until=sim.all_of(procs))
    return sim.now - start, session, len(senders)


def _fault_measurements(session: FaultSession) -> Tuple[Measurement, ...]:
    """The ``faults.*`` counters as sweepable result rows."""
    st = session.stats
    return (
        Measurement("faults_retransmissions", st.retransmissions,
                    units="count"),
        Measurement("faults_packets_lost", st.packets_lost, units="count"),
        Measurement("faults_retry_exhausted", st.retry_exhausted,
                    units="count"),
        Measurement("faults_max_retries_seen", st.max_retries_seen,
                    units="count"),
    )


def run_fault_sensitivity(spec: ExperimentSpec) -> Outcome:
    """``fault_sensitivity``: incast latency vs uniform bit-error rate.

    Extras: ``ber`` (default 0.0 — a fault-free control point),
    ``max_retries``, ``on_exhaust``.  Sweep ``--grid ber=...`` for the
    latency-vs-BER curve.
    """
    ber = float(spec.extra("ber", 0.0))
    backoff_max = spec.extra("backoff_max_ns", None)
    plan = FaultPlan(
        seed=spec.seed,
        max_retries=int(spec.extra("max_retries", 8)),
        backoff_max_ns=None if backoff_max is None else float(backoff_max),
        on_exhaust=str(spec.extra("on_exhaust", "error")),
        bit_errors=(BitError(links="*", ber=ber),) if ber > 0.0 else (),
    )
    elapsed, session, n = incast_under_faults(spec, plan)
    st = session.stats
    return Outcome(
        description=(
            f"{n}-to-1 incast on {spec.shape} at ber={ber:g}: "
            f"{elapsed:.0f} ns, {st.retransmissions} retransmission(s), "
            f"{st.packets_lost} lost"
        ),
        elapsed_ns=elapsed,
        measurements=(
            Measurement("incast_latency_ns", elapsed),
            *_fault_measurements(session),
        ),
    )


def run_link_degradation(spec: ExperimentSpec) -> Outcome:
    """``link_degradation``: incast latency with a degraded link class.

    Extras: ``links`` (selector, default ``"z+"`` — with dimension-
    ordered routing the z links *into* the sink are the incast
    bottleneck, so degrading them moves the end-to-end number; an
    upstream class like ``"x+"`` is hidden behind the sink-link queue
    backlog), ``mode`` (``degrade`` | ``down``), ``factor``
    (bandwidth+latency multiplier for ``degrade``, default 4.0),
    ``window_ns`` (fault window length; 0 means the whole run for
    ``degrade`` and 2000 ns for ``down`` — a permanent outage would
    block the incast forever).
    """
    links = str(spec.extra("links", "z+"))
    mode = str(spec.extra("mode", "degrade"))
    factor = float(spec.extra("factor", 4.0))
    window = float(spec.extra("window_ns", 0.0))
    if mode == "degrade":
        end = window if window > 0.0 else math.inf
        plan = FaultPlan(seed=spec.seed, degradations=(
            Degradation(links=links, start_ns=0.0, end_ns=end,
                        bandwidth_factor=factor, latency_factor=factor),
        ))
    elif mode == "down":
        end = window if window > 0.0 else 2000.0
        plan = FaultPlan(seed=spec.seed, link_downs=(
            LinkDown(links=links, start_ns=0.0, end_ns=end),
        ))
    else:
        raise ValueError(f"unknown degradation mode {mode!r} (degrade|down)")
    elapsed, session, n = incast_under_faults(spec, plan)
    st = session.stats
    blocked = st.link_down_blocks
    return Outcome(
        description=(
            f"{n}-to-1 incast on {spec.shape} with {links} {mode} "
            f"(factor {factor:g}, window {end:g} ns): {elapsed:.0f} ns"
        ),
        elapsed_ns=elapsed,
        measurements=(
            Measurement("incast_latency_ns", elapsed),
            Measurement("faults_link_down_blocks", blocked, units="count"),
            Measurement("faults_node_stall_blocks", st.node_stall_blocks,
                        units="count"),
        ),
    )


# ---------------------------------------------------------------------------
# Anton-vs-cluster crossover
# ---------------------------------------------------------------------------

def cluster_incast_ns(
    senders: int, rounds: int, payload_bytes: int = DEFAULT_PAYLOAD
) -> float:
    """The same all-to-one incast on the DDR2 InfiniBand cluster model
    (:mod:`repro.baselines.cluster`): the Fig. 7 baseline Anton is
    supposed to beat."""
    from repro.baselines.cluster import ClusterNetwork
    from repro.engine.simulator import Simulator

    sim = Simulator()
    net = ClusterNetwork(sim, senders + 1)

    def send_all(rank):
        for _ in range(rounds):
            yield from net.send(rank, 0, payload_bytes, tag="sink")

    for rank in range(1, senders + 1):
        sim.process(send_all(rank))
    done = net.recv(0, "sink", senders * rounds)
    sim.run(until=done)
    return sim.now


@dataclass
class CrossoverPoint:
    ber: float
    anton_ns: float
    retransmissions: int
    packets_lost: int


@dataclass
class CrossoverResult:
    """The latency-vs-BER curve against the fixed cluster baseline."""

    points: list[CrossoverPoint]
    cluster_ns: float
    #: First swept BER at which the fault-laden torus is no faster than
    #: the cluster baseline; ``None`` if Anton wins everywhere swept.
    crossover_ber: Optional[float]

    def render_text(self) -> str:
        from repro.analysis.report import render_table

        rows = [
            [f"{p.ber:g}", p.anton_ns, p.retransmissions,
             "SLOWER" if p.anton_ns >= self.cluster_ns else "faster"]
            for p in self.points
        ]
        verdict = (
            f"crossover at ber={self.crossover_ber:g}"
            if self.crossover_ber is not None
            else "Anton faster at every swept BER"
        )
        return render_table(
            f"Anton incast vs DDR2 IB cluster ({self.cluster_ns:.0f} ns) — "
            + verdict,
            ["ber", "anton ns", "retries", "vs cluster"],
            rows,
            float_format="{:.0f}",
        )


def crossover_vs_cluster(
    shape: Tuple[int, int, int] = (3, 3, 3),
    bers: Sequence[float] = (0.0, 1e-4, 3e-4, 1e-3),
    rounds: int = 2,
    payload_bytes: int = DEFAULT_PAYLOAD,
    seed: int = 0,
) -> CrossoverResult:
    """Sweep the incast across ``bers`` and find where Anton loses.

    The retry bound is raised and the backoff capped (truncated binary
    exponential, as real senders do) so even the ber=1e-3 regime —
    where a 256 B packet corrupts on ~90% of attempts and the mean
    traversal retries ~9 times — completes without exhaustion; the
    crossover against the DDR2 IB baseline lands inside this sweep.
    """
    points: list[CrossoverPoint] = []
    senders = shape[0] * shape[1] * shape[2] - 1
    base = ExperimentSpec(
        "fault_sensitivity", shape=shape, rounds=rounds,
        payload=payload_bytes, seed=seed,
    )
    for ber in bers:
        spec = base.with_extras(ber=ber, max_retries=64,
                                backoff_max_ns=640.0)
        out = run_fault_sensitivity(spec)
        st = {m.metric: m.value for m in out.measurements}
        points.append(CrossoverPoint(
            ber=ber,
            anton_ns=out.elapsed_ns,
            retransmissions=int(st["faults_retransmissions"]),
            packets_lost=int(st["faults_packets_lost"]),
        ))
    cluster = cluster_incast_ns(senders, rounds, payload_bytes)
    crossover = next(
        (p.ber for p in points if p.anton_ns >= cluster), None
    )
    return CrossoverResult(points=points, cluster_ns=cluster,
                           crossover_ber=crossover)
