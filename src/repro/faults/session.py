"""The fault-injection runtime consulted by the network transport.

A :class:`FaultSession` turns a :class:`~repro.faults.plan.FaultPlan`
into per-hop decisions: *was this transmission corrupted* (and how many
stop-and-wait retries did the link-level protocol need), *is this link
down right now*, *is this node stalled*.  It mirrors the ambient
context-manager pattern of the flight recorder and metrics registry —
:func:`use_faults` installs a session, :func:`active_faults` is what
:class:`~repro.network.network.Network` picks up at construction, and
the default is ``None`` so fault-free runs never touch this module.

Reliability protocol model (stop-and-wait, per link direction)
--------------------------------------------------------------
Each transmission attempt serializes the full packet; a CRC check at
the receiving adapter completes ``detect_ns`` after the tail flit, the
NAK crosses back in ``nak_ns``, and the sender backs off
``backoff_base_ns * 2**k`` before attempt ``k+1``.  The sender holds
the channel across the whole exchange, so per-link FCFS order — and
therefore in-order delivery — is preserved across retries.  After
``max_retries`` failed retransmissions the protocol escalates: it
either raises :class:`RetryExhausted` (``on_exhaust="error"``, the
default — a lossless fabric treats this as a machine check) or drops
the packet *loudly* (``on_exhaust="drop"``): the loss is counted on
the network, the session, and the ``faults.*`` metrics, and the
health watchdogs report it — a packet can be lost, but never silently.
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Optional, Tuple

from repro.constants import LINK_COST_NS
from repro.faults.plan import FaultPlan, selector_matches
from repro.trace.metrics import MetricsRegistry, active_registry

if TYPE_CHECKING:  # pragma: no cover
    from repro.network.link import TorusLink
    from repro.network.packet import Packet


class RetryExhausted(RuntimeError):
    """Link-level retransmission gave up on a packet.

    Raised (under the default ``on_exhaust="error"`` policy) from the
    transit's grant continuation; the simulator surfaces it as a run
    failure, and the sweep harness marks the point as errored.
    """


@dataclass
class FaultStats:
    """Aggregate fault accounting for one session (always on; the
    ``faults.*`` metrics mirror these when a registry is attached)."""

    corrupted: int = 0          #: transmission attempts that failed CRC
    retransmissions: int = 0    #: retries issued (== corrupted attempts)
    retry_exhausted: int = 0    #: traversals that hit the retry bound
    packets_lost: int = 0       #: packets dropped after exhaustion
    deliveries_lost: int = 0    #: client deliveries those drops owed
    link_down_blocks: int = 0   #: transits that waited out a down window
    node_stall_blocks: int = 0  #: transits/visits delayed by a stall
    max_retries_seen: int = 0   #: worst per-traversal retry count

    def as_dict(self) -> dict:
        return {
            "corrupted": self.corrupted,
            "retransmissions": self.retransmissions,
            "retry_exhausted": self.retry_exhausted,
            "packets_lost": self.packets_lost,
            "deliveries_lost": self.deliveries_lost,
            "link_down_blocks": self.link_down_blocks,
            "node_stall_blocks": self.node_stall_blocks,
            "max_retries_seen": self.max_retries_seen,
        }


class TransmitOutcome:
    """What one link traversal cost under the active fault plan.

    ``hold_ns`` replaces the fault-free channel occupancy (it includes
    every failed attempt plus the final serialization); ``extra_ns`` is
    added to the hop's downstream head latency; ``retry_ns`` is the
    part of both attributable to retransmission (tiled as the RETRY
    component by the critical-path analyzer); ``lost`` marks a packet
    dropped by the ``on_exhaust="drop"`` escalation policy.
    """

    __slots__ = ("hold_ns", "extra_ns", "retry_ns", "retries", "lost")

    def __init__(self, hold_ns: float, extra_ns: float, retry_ns: float,
                 retries: int, lost: bool) -> None:
        self.hold_ns = hold_ns
        self.extra_ns = extra_ns
        self.retry_ns = retry_ns
        self.retries = retries
        self.lost = lost


class FaultSession:
    """Runtime state for one fault plan over one simulated run.

    Parameters
    ----------
    plan:
        The declarative fault schedule.
    registry:
        Metrics registry for the ``faults.*`` series; defaults to the
        ambient registry (``None`` disables metrics, stats stay on).
    """

    def __init__(self, plan: FaultPlan,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.plan = plan
        #: Hot-path guard: the transport only consults an enabled
        #: session, so an empty plan is indistinguishable from no plan.
        self.enabled = plan.enabled
        self.stats = FaultStats()
        self.registry = registry if registry is not None else active_registry()
        self._rngs: dict[tuple, random.Random] = {}
        self._bit_errors = plan.bit_errors
        self._degradations = plan.degradations
        self._link_downs = plan.link_downs
        self._node_stalls = plan.node_stalls
        m = self.registry
        if m is not None and self.enabled:
            self._c_corrupted = m.counter(
                "faults.corrupted", "transmission attempts that failed CRC")
            self._c_retrans = m.counter(
                "faults.retransmissions", "link-level retries issued")
            self._c_exhausted = m.counter(
                "faults.retry_exhausted", "traversals that hit the retry bound")
            self._c_lost = m.counter(
                "faults.packets_lost", "packets dropped after retry exhaustion")
            self._c_deliv_lost = m.counter(
                "faults.deliveries_lost", "client deliveries lost with dropped packets")
            self._c_down = m.counter(
                "faults.link_down_blocks", "transits that waited out a link-down window")
            self._c_stall = m.counter(
                "faults.node_stall_blocks", "transits delayed by a node stall")
            self._h_retry = m.histogram(
                "faults.retry_delay_ns", "per-traversal retransmission delay")
            self._h_retries = m.histogram(
                "faults.retries_per_traversal",
                "retransmission count per corrupted traversal")
        else:
            self._c_corrupted = self._c_retrans = self._c_exhausted = None
            self._c_lost = self._c_deliv_lost = None
            self._c_down = self._c_stall = None
            self._h_retry = self._h_retries = None

    # ------------------------------------------------------------------
    # randomness
    # ------------------------------------------------------------------
    def _rng(self, key: tuple) -> random.Random:
        """The per-link random stream (derived seed; see FaultPlan)."""
        rng = self._rngs.get(key)
        if rng is None:
            rng = random.Random(self.plan.derived_seed("link", key))
            self._rngs[key] = rng
        return rng

    # ------------------------------------------------------------------
    # per-hop decisions
    # ------------------------------------------------------------------
    def transmit(self, packet: "Packet", link: "TorusLink", dim: str,
                 sign: int, now: float) -> TransmitOutcome:
        """Resolve one link traversal: degradation, corruption, retries.

        Called by the transit's grant continuation *instead of* the
        fault-free occupancy/latency arithmetic; never called when the
        session is disabled.
        """
        plan = self.plan
        ser = packet.serialization_ns
        hold = ser
        extra = 0.0
        for d in self._degradations:
            if d.active(now) and selector_matches(d.links, dim, sign):
                hold *= d.bandwidth_factor
                if d.latency_factor > 1.0:
                    extra += LINK_COST_NS[dim] * (d.latency_factor - 1.0)

        forced = 0
        keep = 1.0
        if self._bit_errors:
            bits = packet.wire_bytes * 8
            for b in self._bit_errors:
                if selector_matches(b.links, dim, sign):
                    if b.ber > 0.0:
                        keep *= (1.0 - b.ber) ** bits
                    if b.corrupt_attempts > forced:
                        forced = b.corrupt_attempts
        p_corrupt = 1.0 - keep

        retries = 0
        retry_ns = 0.0
        if forced or p_corrupt > 0.0:
            lid = link.link_id
            rng = self._rng((lid.node, lid.dim, lid.sign)) \
                if p_corrupt > 0.0 else None
            cap = plan.backoff_max_ns
            while retries < forced or \
                    (p_corrupt > 0.0 and rng.random() < p_corrupt):
                # Attempt `retries` failed: its serialization, the CRC
                # detection at the far adapter, the NAK crossing back,
                # and the (optionally capped) exponential backoff
                # before the next attempt.
                backoff = plan.backoff_base_ns * (2.0 ** retries)
                if cap is not None and backoff > cap:
                    backoff = cap
                retry_ns += hold + plan.detect_ns + plan.nak_ns + backoff
                retries += 1
                if retries > plan.max_retries:
                    return self._exhausted(packet, link, retries, retry_ns)
            self._account_retries(link, retries, retry_ns)

        return TransmitOutcome(hold + retry_ns, extra + retry_ns,
                               retry_ns, retries, False)

    def _account_retries(self, link: "TorusLink", retries: int,
                         retry_ns: float) -> None:
        if retries == 0:
            return
        st = self.stats
        st.corrupted += retries
        st.retransmissions += retries
        if retries > st.max_retries_seen:
            st.max_retries_seen = retries
        link.retransmissions += retries
        if self._c_retrans is not None:
            self._c_corrupted.inc(retries)
            self._c_retrans.inc(retries)
            self._h_retry.observe(retry_ns)
            self._h_retries.observe(retries)

    def _exhausted(self, packet: "Packet", link: "TorusLink", retries: int,
                   retry_ns: float) -> TransmitOutcome:
        # The final attempt is not retransmitted; account what happened.
        self._account_retries(link, retries, retry_ns)
        self.stats.retry_exhausted += 1
        if self._c_exhausted is not None:
            self._c_exhausted.inc()
        if self.plan.on_exhaust == "error":
            raise RetryExhausted(
                f"packet {packet.packet_id} exceeded "
                f"{self.plan.max_retries} retransmissions on "
                f"{link.link_id!r} (escalation policy: error)"
            )
        # "drop": the channel was held for every failed attempt; the
        # packet itself goes nowhere.  The caller accounts the loss.
        return TransmitOutcome(retry_ns, 0.0, retry_ns, retries, True)

    def record_lost(self, packet: "Packet", deliveries: int) -> None:
        """Account a dropped packet (called by the transit's loss path,
        alongside the network's own counters — loss is never silent)."""
        st = self.stats
        st.packets_lost += 1
        st.deliveries_lost += deliveries
        if self._c_lost is not None:
            self._c_lost.inc()
            self._c_deliv_lost.inc(deliveries)

    # ------------------------------------------------------------------
    # availability windows
    # ------------------------------------------------------------------
    def stall_until(self, node: Tuple[int, ...], now: float) -> float:
        """End of a stall window covering ``node`` at ``now`` (0 if none)."""
        until = 0.0
        for s in self._node_stalls:
            if s.node == node and s.active(now) and s.end_ns > until:
                until = s.end_ns
        if until > now:
            self.stats.node_stall_blocks += 1
            if self._c_stall is not None:
                self._c_stall.inc()
        return until

    def down_until(self, dim: str, sign: int, now: float) -> float:
        """End of a link-down window covering (dim, sign) at ``now``."""
        until = 0.0
        for d in self._link_downs:
            if d.active(now) and selector_matches(d.links, dim, sign) \
                    and d.end_ns > until:
                until = d.end_ns
        if until > now:
            self.stats.link_down_blocks += 1
            if self._c_down is not None:
                self._c_down.inc()
        return until

    def transit_blocked_until(self, node: Tuple[int, ...], dim: str,
                              sign: int, now: float) -> float:
        """Earliest time a transit at ``node`` may use link (dim, sign);
        0 when nothing blocks it right now."""
        if not (self._node_stalls or self._link_downs):
            return 0.0
        return max(self.stall_until(node, now),
                   self.down_until(dim, sign, now))


# ---------------------------------------------------------------------------
# Ambient session
# ---------------------------------------------------------------------------
#: The session new networks attach at construction time.  ``None``
#: (the default) means "no fault injection": the transport pays one
#: attribute load and is-None test per packet, nothing more.
_active_faults: Optional[FaultSession] = None


def active_faults() -> Optional[FaultSession]:
    """The ambient fault session, or ``None`` when injection is off."""
    return _active_faults


@contextmanager
def use_faults(session: FaultSession) -> Iterator[FaultSession]:
    """Install ``session`` as the ambient fault session for the block."""
    global _active_faults
    prev = _active_faults
    _active_faults = session
    try:
        yield session
    finally:
        _active_faults = prev


@contextmanager
def use_fault_plan(plan: FaultPlan,
                   registry: Optional[MetricsRegistry] = None
                   ) -> Iterator[FaultSession]:
    """Convenience: build a session from ``plan`` and install it."""
    with use_faults(FaultSession(plan, registry=registry)) as session:
        yield session
