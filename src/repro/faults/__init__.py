"""Deterministic fault injection for the torus fabric.

Real Anton-class networks are lossless only because every link pairs
CRC error *detection* with link-level *retransmission* (the Anton 3
network paper describes exactly that machinery; QCDOC's torus leaned
on the same discipline).  This package adds that layer to the
reproduction as three pieces:

* :class:`~repro.faults.plan.FaultPlan` — a declarative, serializable
  schedule of faults: per-link bit-error rates, transient degradation
  (bandwidth/latency multipliers over time windows), hard link-down
  intervals, and node stall events, all drawn from per-fault derived
  seeds so sweeps stay reproducible;
* :class:`~repro.faults.session.FaultSession` — the runtime that the
  network transport consults per hop: CRC-style detection with a
  calibrated detection latency, bounded retransmission with
  exponential backoff while the channel is held (which is what keeps
  delivery in order across retries), and a retry-exhausted escalation
  path that is never silent;
* :mod:`~repro.faults.study` — the degradation experiments
  (``fault_sensitivity``, ``link_degradation``) registered through the
  sweep runner, including the Anton-vs-cluster crossover analysis.

The subsystem is strictly opt-in: a network built outside a
:func:`~repro.faults.session.use_faults` block (or with an empty plan)
takes the exact pre-existing code path — runs with injection disabled
are byte-identical to runs without this package, property-tested in
``tests/properties/test_fault_equivalence.py``.
"""

from repro.faults.plan import (
    BitError,
    Degradation,
    FaultPlan,
    LinkDown,
    NodeStall,
)
from repro.faults.session import (
    FaultSession,
    FaultStats,
    RetryExhausted,
    active_faults,
    use_fault_plan,
    use_faults,
)

__all__ = [
    "BitError",
    "Degradation",
    "FaultPlan",
    "FaultSession",
    "FaultStats",
    "LinkDown",
    "NodeStall",
    "RetryExhausted",
    "active_faults",
    "use_fault_plan",
    "use_faults",
]
