"""Packet-level model of Anton's inter-node communication network.

The network is a 3-D torus of nodes; each node hosts a set of clients
(processing slices, HTIS, accumulation memories) with remotely writable
local memories (§III, Fig. 3).  The model is a virtual-cut-through,
segment-calibrated discrete-event simulation:

* every packet is an explicit object routed hop by hop;
* per-link bandwidth contention is modelled with FCFS resources whose
  occupancy equals the packet serialization time;
* head-of-packet latency uses the calibrated Fig. 5 / Fig. 6 segment
  costs (see :mod:`repro.constants` and DESIGN.md §5);
* multicast uses per-node pattern tables compiled into dimension-ordered
  spanning trees (§III.A);
* an optional reordering mode models the network's lack of ordering
  guarantees, with the per-pair in-order header flag restoring order
  where software requests it (§III.A, used by migration §IV.B.5).
"""

from repro.network.network import Network
from repro.network.multicast import MulticastPattern, compile_pattern
from repro.network.packet import (
    AccumPacket,
    FifoPacket,
    Packet,
    PacketKind,
    WritePacket,
)

__all__ = [
    "AccumPacket",
    "FifoPacket",
    "MulticastPattern",
    "Network",
    "Packet",
    "PacketKind",
    "WritePacket",
    "compile_pattern",
]
