"""Packet formats (§III.A).

Packets carry 32 bytes of header and 0–256 bytes of payload; writes of
up to 8 bytes transport the data in the header itself.  Three packet
kinds exist in the model:

* **write** — a remote write into a client's local memory, labelled
  with a synchronization-counter identifier (counted remote writes,
  §III.B);
* **accum** — an accumulation packet that *adds* its payload, in 4-byte
  quantities, to the value currently stored at the target address
  (accepted only by accumulation memories);
* **fifo** — an arbitrary message delivered to a processing slice's
  hardware-managed circular FIFO (§III.C), used when communication
  cannot be formulated as counted remote writes (migration).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Optional

import numpy as np

from repro.constants import (
    HEADER_BYTES,
    INLINE_PAYLOAD_BYTES,
    MAX_PAYLOAD_BYTES,
    TORUS_LINK_EFFECTIVE_GBPS,
)
from repro.topology.torus import NodeCoord

_packet_ids = itertools.count()


class PacketKind(Enum):
    WRITE = "write"
    ACCUM = "accum"
    FIFO = "fifo"


@dataclass(slots=True)
class Packet:
    """A network packet.

    Parameters
    ----------
    src_node, src_client:
        Originating node coordinate and client name.
    dst_node, dst_client:
        Target node and client.  For multicast packets these describe
        the injection point; the actual fan-out comes from the pattern
        table (``pattern_id``).
    payload_bytes:
        Payload size, 0–256.
    payload:
        Optional actual data (a numpy array or any picklable object);
        carried end to end so that integration tests can verify data
        integrity, but never consulted by the network model itself.
    counter_id:
        Synchronization counter to increment at the receiver (write and
        accum packets).
    address:
        Target offset/key in the receiving client's local memory.
    in_order:
        Header flag selectively guaranteeing in-order delivery between
        a fixed source-destination pair (§III.A).
    pattern_id:
        Multicast pattern identifier; ``None`` for unicast.
    """

    src_node: NodeCoord
    src_client: str
    dst_node: NodeCoord
    dst_client: str
    kind: PacketKind = PacketKind.WRITE
    payload_bytes: int = 0
    payload: Any = None
    counter_id: Optional[str] = None
    address: Optional[Any] = None
    in_order: bool = False
    pattern_id: Optional[int] = None
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    #: Bytes occupying a link (header + non-inline payload) and the
    #: per-link streaming time; both derived once at construction —
    #: the transport reads them on every hop.
    wire_bytes: int = field(init=False)
    serialization_ns: float = field(init=False)

    def __post_init__(self) -> None:
        if not 0 <= self.payload_bytes <= MAX_PAYLOAD_BYTES:
            raise ValueError(
                f"payload must be 0..{MAX_PAYLOAD_BYTES} bytes, "
                f"got {self.payload_bytes}"
            )
        if self.kind is PacketKind.ACCUM and self.payload_bytes % 4 != 0:
            raise ValueError(
                "accumulation packets add their payload in 4-byte "
                f"quantities; got {self.payload_bytes} bytes"
            )
        self.wire_bytes = (
            HEADER_BYTES
            if self.payload_bytes <= INLINE_PAYLOAD_BYTES
            else HEADER_BYTES + self.payload_bytes
        )
        self.serialization_ns = self.wire_bytes * 8.0 / TORUS_LINK_EFFECTIVE_GBPS

    # -- wire model ---------------------------------------------------------
    @property
    def inline(self) -> bool:
        """True when the payload rides in the header (≤ 8 bytes)."""
        return self.payload_bytes <= INLINE_PAYLOAD_BYTES

    @property
    def is_multicast(self) -> bool:
        return self.pattern_id is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{self.kind.value} pkt#{self.packet_id} "
            f"{self.src_node}:{self.src_client} -> "
            f"{self.dst_node}:{self.dst_client} {self.payload_bytes}B>"
        )


def WritePacket(**kwargs: Any) -> Packet:
    """Convenience constructor for a write packet."""
    kwargs.setdefault("kind", PacketKind.WRITE)
    return Packet(**kwargs)


def AccumPacket(**kwargs: Any) -> Packet:
    """Convenience constructor for an accumulation packet."""
    kwargs.setdefault("kind", PacketKind.ACCUM)
    return Packet(**kwargs)


def FifoPacket(**kwargs: Any) -> Packet:
    """Convenience constructor for a FIFO message packet."""
    kwargs.setdefault("kind", PacketKind.FIFO)
    return Packet(**kwargs)


def payload_bytes_of(data: Any) -> int:
    """Payload size of an actual data object (numpy-aware)."""
    if data is None:
        return 0
    if isinstance(data, np.ndarray):
        return int(data.nbytes)
    if isinstance(data, (bytes, bytearray)):
        return len(data)
    if isinstance(data, str):
        return min(len(data.encode()), MAX_PAYLOAD_BYTES)
    if isinstance(data, (int, float)):
        return 8
    raise TypeError(f"cannot infer payload size of {type(data).__name__}")
