"""The packet-level torus network simulator.

Latency model (calibrated, see :mod:`repro.constants` and DESIGN.md §5):

* source on-chip ring traversal: ``SRC_RING_NS`` (19 ns);
* each link crossing: ``LINK_COST_NS[dim]`` (adapter pair + wire);
* each transit node: ``THROUGH_RING_NS[outgoing dim]``;
* destination ring traversal: ``DST_RING_NS`` (25 ns);
* non-inline payload serialization latency charged once, at the first
  link (virtual cut-through — downstream links are pipelined);
* every traversed link direction is *occupied* for the full
  serialization time, which is how bandwidth contention and
  head-of-line blocking arise.

With the sender's 36 ns injection overhead and the receiver's 42 ns
successful counter poll (both charged by the clients), a 0-byte write
between X-neighbours costs exactly 162 ns — the paper's headline
number.

Ordering: the network does not, in general, preserve packet ordering
(§III.A).  The model exposes this with an optional per-hop reordering
jitter; packets sent with the ``in_order`` header flag are delivered in
send order between a fixed (source node, source client, destination
node) pair regardless of jitter, which is what Anton's migration
protocol relies on (§IV.B.5).

Implementation note: packet transport is written in continuation-
passing style (callbacks on the event queue) rather than as generator
processes — an MD time step moves hundreds of thousands of packets and
the per-process machinery dominated the run time of the first
implementation.  Client-side code keeps the friendlier generator API.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from repro.constants import (
    DST_RING_NS,
    HEADER_BYTES,
    LINK_COST_NS,
    MAX_MULTICAST_PATTERNS,
    MULTICAST_LOOKUP_NS,
    SRC_RING_NS,
    THROUGH_RING_NS,
    TORUS_LINK_EFFECTIVE_GBPS,
)
from repro.congestion.recorder import (
    CongestionRecorder,
    NullCongestionRecorder,
    active_congestion,
)
from repro.engine.event import Event
from repro.engine.simulator import Simulator
from repro.faults.session import FaultSession, active_faults
from repro.network.link import LinkId, TorusLink
from repro.network.multicast import MulticastPattern
from repro.network.packet import Packet
from repro.topology.torus import Hop, NodeCoord, Torus3D
from repro.trace.flight import FlightRecorder, NullFlightRecorder, active_flight

if TYPE_CHECKING:  # pragma: no cover
    from repro.asic.client import NetworkClient

#: Serialization time of a bare header; its wire time is overlapped with
#: the link-adapter latency, so only payload beyond the header adds
#: head latency.
_HEADER_SER_NS = HEADER_BYTES * 8.0 / TORUS_LINK_EFFECTIVE_GBPS


class Network:
    """A torus network with attached clients.

    Parameters
    ----------
    sim:
        The simulation engine.
    torus:
        Machine topology.
    reorder_jitter_ns:
        When positive, each hop of a packet *without* the in-order flag
        receives a uniform extra delay in ``[0, reorder_jitter_ns)``,
        modelling adaptive-routing reordering.  Zero (the default)
        keeps the network deterministic and calibrated.
    seed:
        Seed for the jitter RNG (jitter is still reproducible).
    flight:
        Optional :class:`~repro.trace.flight.FlightRecorder` observing
        every packet's causal spans.  Defaults to the ambient recorder
        (:func:`~repro.trace.flight.active_flight`), which is the
        zero-cost null recorder unless telemetry was switched on; the
        transport guards every hook behind ``flight.enabled``.
    congestion:
        Optional :class:`~repro.congestion.recorder.CongestionRecorder`
        sampling per-link-direction queue depth and occupancy at every
        contended hop.  Same ambient/null discipline as ``flight``:
        defaults to :func:`~repro.congestion.recorder.active_congestion`
        and every hook is guarded behind ``congestion.enabled``.
    """

    def __init__(
        self,
        sim: Simulator,
        torus: Torus3D,
        reorder_jitter_ns: float = 0.0,
        seed: int = 0,
        flight: "FlightRecorder | NullFlightRecorder | None" = None,
        faults: "FaultSession | None" = None,
        congestion: "CongestionRecorder | NullCongestionRecorder | None" = None,
    ) -> None:
        self.sim = sim
        self.torus = torus
        self.flight = flight if flight is not None else active_flight()
        self.congestion = (
            congestion if congestion is not None else active_congestion()
        )
        #: Fault-injection session (see :mod:`repro.faults`); defaults
        #: to the ambient session, which is ``None`` — and a disabled
        #: session is never consulted — so fault-free runs take the
        #: exact historical code path.
        self.faults = faults if faults is not None else active_faults()
        if self.faults is not None and not self.faults.enabled:
            self.faults = None
        self.reorder_jitter_ns = reorder_jitter_ns
        self._rng = random.Random(seed)
        self._links: dict[tuple, TorusLink] = {}
        self._clients: dict[tuple[NodeCoord, str], "NetworkClient"] = {}
        self._patterns: dict[int, MulticastPattern] = {}
        self._next_pattern_id = 0
        self._per_node_patterns: dict[NodeCoord, int] = {}
        self._inorder_tail: dict[tuple[NodeCoord, str, NodeCoord], Event] = {}
        # statistics
        self.packets_injected = 0
        self.packets_delivered = 0
        self.link_traversals = 0
        #: Packets whose every delivery has landed (all branches, for
        #: multicast).  ``packets_injected - packets_completed`` is the
        #: in-flight count the health watchdogs conserve against.
        self.packets_completed = 0
        #: Client deliveries owed by every injected packet (1 per
        #: unicast, one per reached client for multicast); at
        #: quiescence this must equal ``packets_delivered`` plus
        #: ``deliveries_lost`` exactly.
        self.deliveries_expected = 0
        #: Packets dropped by the fault session's ``on_exhaust="drop"``
        #: escalation (a dropped packet still counts as *completed* so
        #: the in-flight conservation invariant closes); always 0
        #: without fault injection.
        self.packets_lost = 0
        #: Client deliveries those dropped packets owed (> 1 per packet
        #: for multicast subtrees cut off by the drop).
        self.deliveries_lost = 0

    @property
    def packets_in_flight(self) -> int:
        """Packets injected but not yet fully delivered."""
        return self.packets_injected - self.packets_completed

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, client: "NetworkClient") -> None:
        """Register a client at (node, name); names are per-node unique."""
        key = (client.node, client.name)
        if key in self._clients:
            raise ValueError(f"client {client.name!r} already attached at {client.node}")
        self._clients[key] = client

    def client(self, node: "NodeCoord | int", name: str) -> "NetworkClient":
        """Look up an attached client."""
        key = (self.torus.coord(node), name)
        try:
            return self._clients[key]
        except KeyError:
            raise KeyError(f"no client {name!r} at node {key[0]}") from None

    def link(self, node: "NodeCoord | int", dim: str, sign: int) -> TorusLink:
        """The link direction leaving ``node`` along ``dim``/``sign``
        (created on first use; keyed by plain tuple — hot path)."""
        key = (node, dim, sign)
        link = self._links.get(key)
        if link is None:
            coord = self.torus.coord(node)
            key = (coord, dim, sign)
            link = self._links.get(key)
            if link is None:
                link = TorusLink(self.sim, LinkId(coord, dim, sign))
                self._links[key] = link
        return link

    def links(self):
        """All link directions that have carried traffic."""
        return iter(self._links.values())

    # ------------------------------------------------------------------
    # multicast table programming
    # ------------------------------------------------------------------
    def register_pattern(self, pattern: MulticastPattern) -> int:
        """Program a compiled pattern into the per-node tables.

        Raises
        ------
        RuntimeError
            If any touched node would exceed the hardware limit of 256
            patterns (§III.A).
        """
        for node in pattern.entries:
            if self._per_node_patterns.get(node, 0) >= MAX_MULTICAST_PATTERNS:
                raise RuntimeError(
                    f"node {node} exceeds {MAX_MULTICAST_PATTERNS} multicast patterns"
                )
        for node in pattern.entries:
            self._per_node_patterns[node] = self._per_node_patterns.get(node, 0) + 1
        pattern_id = self._next_pattern_id
        self._next_pattern_id += 1
        pattern.pattern_id = pattern_id
        self._patterns[pattern_id] = pattern
        return pattern_id

    def pattern(self, pattern_id: int) -> MulticastPattern:
        return self._patterns[pattern_id]

    # ------------------------------------------------------------------
    # packet injection
    # ------------------------------------------------------------------
    def inject(self, packet: Packet) -> Event:
        """Inject a packet at its source node's ring.

        The caller (a client) is responsible for charging its own send
        overhead (e.g. ``SLICE_SEND_NS``) before calling.  Returns an
        event that fires when the packet has been delivered to every
        destination client (all of them, for multicast).
        """
        self.packets_injected += 1
        fl = self.flight
        if fl.enabled:
            fl.packet_injected(packet, self.sim.now)
        done = Event(self.sim, name="delivered")
        if packet.is_multicast:
            _McastTransit(self, packet, done)
        else:
            _UcastTransit(self, packet, done)
        return done

    # -- shared helpers -----------------------------------------------------
    def _inorder_gate(
        self, packet: Packet, dst: NodeCoord
    ) -> tuple[Optional[Event], Optional[Event]]:
        """FIFO chaining for the per-pair in-order delivery guarantee.

        Returns ``(prev, mine)``: delivery must wait for ``prev`` (the
        previous in-order packet of this pair) and succeed ``mine``
        once delivered.  Gate creation order equals arrival-processing
        order, which for in-order packets (never jittered, fixed path)
        equals send order.
        """
        if not packet.in_order:
            return None, None
        key = (packet.src_node, packet.src_client, dst)
        prev = self._inorder_tail.get(key)
        mine = Event(self.sim, name="inorder")
        self._inorder_tail[key] = mine
        return prev, mine

    def _jitter(self, packet: Packet) -> float:
        if self.reorder_jitter_ns > 0.0 and not packet.in_order:
            return self._rng.uniform(0.0, self.reorder_jitter_ns)
        return 0.0

    def _deliver(self, packet: Packet, node: NodeCoord, client_name: str) -> None:
        client = self._clients.get((node, client_name))
        if client is None:
            raise KeyError(
                f"packet {packet!r} addressed to missing client "
                f"{client_name!r} at {node}"
            )
        self.packets_delivered += 1
        fl = self.flight
        if fl.enabled:
            fl.packet_delivered(packet, node, client_name, self.sim.now)
        client.receive(packet)


class _UcastTransit:
    """Continuation-passing unicast transport of one packet."""

    __slots__ = ("net", "packet", "done", "route", "idx", "cur",
                 "payload_extra", "order_prev", "order_mine")

    def __init__(self, net: Network, packet: Packet, done: Event) -> None:
        self.net = net
        self.packet = packet
        self.done = done
        torus = net.torus
        src = packet.src_node
        dst = packet.dst_node
        self.route = torus.route(src, dst) if src != dst else []
        self.idx = 0
        self.cur = src
        self.payload_extra = max(0.0, packet.serialization_ns - _HEADER_SER_NS)
        self.order_prev, self.order_mine = net._inorder_gate(packet, dst)
        net.deliveries_expected += 1
        net.sim.schedule(SRC_RING_NS, self._next_hop)

    def _next_hop(self) -> None:
        net = self.net
        if self.idx >= len(self.route):
            delay = DST_RING_NS if self.route else 0.0
            net.sim.schedule(delay, self._arrive)
            return
        hop = self.route[self.idx]
        fa = net.faults
        if fa is not None:
            until = fa.transit_blocked_until(
                self.cur, hop.dim, hop.sign, net.sim.now
            )
            if until > net.sim.now:
                # Link down or node stalled: re-arm at the window's end
                # (re-checked there — windows may be back to back).
                net.sim.schedule(until - net.sim.now, self._next_hop)
                return
        link = net.link(self.cur, hop.dim, hop.sign)
        if link.channel.try_acquire():
            self._granted(link, hop)
        else:
            fl = net.flight
            if fl.enabled:
                fl.hop_enqueued(self.packet, link, net.sim.now)
            cg = net.congestion
            if cg.enabled:
                cg.hop_enqueued(self.packet, link, net.sim.now)
            req = link.channel.request()
            req.add_callback(lambda _ev, link=link, hop=hop: self._granted(link, hop))

    def _granted(self, link: TorusLink, hop: Hop) -> None:
        net = self.net
        packet = self.packet
        link.record(packet.wire_bytes)
        net.link_traversals += 1
        fl = net.flight
        if fl.enabled:
            fl.hop_granted(packet, link, net.sim.now)
        cg = net.congestion
        if cg.enabled:
            cg.hop_granted(packet, link, net.sim.now)
        fa = net.faults
        if fa is None:
            net.sim.schedule(packet.serialization_ns, link.channel.release)
            fault_extra = 0.0
        else:
            out = fa.transmit(packet, link, hop.dim, hop.sign, net.sim.now)
            net.sim.schedule(out.hold_ns, link.channel.release)
            if out.retries and fl.enabled:
                fl.hop_fault(packet, link, out.hold_ns, out.retry_ns,
                             out.retries)
            if out.lost:
                self._lost()
                return
            fault_extra = out.extra_ns
        latency = LINK_COST_NS[hop.dim]
        if self.idx == 0:
            latency += self.payload_extra
        else:
            latency += THROUGH_RING_NS[hop.dim]
        latency += fault_extra
        latency += net._jitter(packet)
        self.cur = net.torus.neighbor(self.cur, hop.dim, hop.sign)
        self.idx += 1
        net.sim.schedule(latency, self._next_hop)

    def _lost(self) -> None:
        """Drop escalation: account the loss loudly and complete the
        packet so the in-flight conservation invariant still closes."""
        net = self.net
        net.packets_lost += 1
        net.deliveries_lost += 1
        net.packets_completed += 1
        net.faults.record_lost(self.packet, 1)
        # The in-order chain must not observe the drop out of order: our
        # gate opens only once every predecessor's gate has opened.
        mine = self.order_mine
        if mine is not None and not mine.triggered:
            prev = self.order_prev
            if prev is not None and not prev.triggered:
                prev.add_callback(lambda _ev: mine.succeed(net.sim.now))
            else:
                mine.succeed(net.sim.now)
        self.done.succeed(net.sim.now)

    def _arrive(self) -> None:
        if self.order_prev is not None and not self.order_prev.triggered:
            self.order_prev.add_callback(lambda _ev: self._finish())
        else:
            self._finish()

    def _finish(self) -> None:
        net = self.net
        net._deliver(self.packet, self.packet.dst_node, self.packet.dst_client)
        if self.order_mine is not None and not self.order_mine.triggered:
            self.order_mine.succeed(net.sim.now)
        net.packets_completed += 1
        self.done.succeed(net.sim.now)


class _McastTransit:
    """Continuation-passing multicast transport of one packet.

    Walks the compiled tree, delivering to local clients and forwarding
    along outgoing links; ``done`` fires when the last delivery lands.
    """

    __slots__ = ("net", "packet", "done", "pattern", "payload_extra", "outstanding")

    def __init__(self, net: Network, packet: Packet, done: Event) -> None:
        self.net = net
        self.packet = packet
        self.done = done
        pattern = net._patterns.get(packet.pattern_id)  # type: ignore[arg-type]
        if pattern is None:
            raise KeyError(f"multicast pattern {packet.pattern_id} not registered")
        if pattern.source != packet.src_node:
            raise ValueError(
                f"pattern {packet.pattern_id} was compiled for source "
                f"{pattern.source}, injected at {packet.src_node}"
            )
        self.pattern = pattern
        self.payload_extra = max(0.0, packet.serialization_ns - _HEADER_SER_NS)
        self.outstanding = sum(
            len(e.local_clients) for e in pattern.entries.values()
        )
        if self.outstanding == 0:
            raise ValueError(f"pattern {packet.pattern_id} delivers to no client")
        net.deliveries_expected += self.outstanding
        net.sim.schedule(SRC_RING_NS, self._visit, packet.src_node, True)

    def _visit(self, node: NodeCoord, first_link: bool) -> None:
        net = self.net
        fa = net.faults
        if fa is not None:
            until = fa.stall_until(node, net.sim.now)
            if until > net.sim.now:
                # Stalled node: the whole visit (local deliveries and
                # forwarding) waits out the window.
                net.sim.schedule(until - net.sim.now, self._visit,
                                 node, first_link)
                return
        entry = self.pattern.entries[node]
        packet = self.packet
        # All local deliveries of one node visit land on the same tick
        # (DST_RING_NS past the ring, or immediately at the source), so
        # they go out as one batched entry — a visit costs ~1 scheduler
        # entry instead of one per client.  Client order, and for
        # in-order packets the gate-creation order, is unchanged.
        delay = DST_RING_NS if node != packet.src_node else 0.0
        if packet.in_order:
            pairs = []
            for client_name in entry.local_clients:
                order_prev, order_mine = net._inorder_gate(packet, node)
                pairs.append((
                    self._deliver_local,
                    (node, client_name, order_prev, order_mine),
                ))
        else:
            pairs = [
                (self._finish_local, (node, client_name, None))
                for client_name in entry.local_clients
            ]
        net.sim.schedule_batch(delay, pairs)
        for dim, sign in entry.forward:
            self._forward(node, dim, sign, first_link)

    def _forward(self, node: NodeCoord, dim: str, sign: int,
                 first_link: bool) -> None:
        net = self.net
        fa = net.faults
        if fa is not None:
            until = fa.down_until(dim, sign, net.sim.now)
            if until > net.sim.now:
                net.sim.schedule(until - net.sim.now, self._forward,
                                 node, dim, sign, first_link)
                return
        link = net.link(node, dim, sign)
        if link.channel.try_acquire():
            self._granted(node, dim, sign, link, first_link)
        else:
            fl = net.flight
            if fl.enabled:
                fl.hop_enqueued(self.packet, link, net.sim.now)
            cg = net.congestion
            if cg.enabled:
                cg.hop_enqueued(self.packet, link, net.sim.now)
            req = link.channel.request()
            req.add_callback(
                lambda _ev, node=node, dim=dim, sign=sign, link=link,
                first=first_link: self._granted(node, dim, sign, link, first)
            )

    def _deliver_local(
        self,
        node: NodeCoord,
        client_name: str,
        order_prev: Optional[Event],
        order_mine: Optional[Event],
    ) -> None:
        if order_prev is not None and not order_prev.triggered:
            order_prev.add_callback(
                lambda _ev: self._finish_local(node, client_name, order_mine)
            )
        else:
            self._finish_local(node, client_name, order_mine)

    def _finish_local(
        self, node: NodeCoord, client_name: str, order_mine: Optional[Event]
    ) -> None:
        net = self.net
        net._deliver(self.packet, node, client_name)
        if order_mine is not None and not order_mine.triggered:
            order_mine.succeed(net.sim.now)
        self.outstanding -= 1
        if self.outstanding == 0:
            net.packets_completed += 1
            self.done.succeed(net.sim.now)

    def _granted(
        self, node: NodeCoord, dim: str, sign: int, link: TorusLink, first_link: bool
    ) -> None:
        net = self.net
        packet = self.packet
        link.record(packet.wire_bytes)
        net.link_traversals += 1
        fl = net.flight
        if fl.enabled:
            fl.hop_granted(packet, link, net.sim.now)
        cg = net.congestion
        if cg.enabled:
            cg.hop_granted(packet, link, net.sim.now)
        nxt = net.torus.neighbor(node, dim, sign)
        fa = net.faults
        if fa is None:
            net.sim.schedule(packet.serialization_ns, link.channel.release)
            fault_extra = 0.0
        else:
            out = fa.transmit(packet, link, dim, sign, net.sim.now)
            net.sim.schedule(out.hold_ns, link.channel.release)
            if out.retries and fl.enabled:
                fl.hop_fault(packet, link, out.hold_ns, out.retry_ns,
                             out.retries)
            if out.lost:
                self._lost_branch(nxt)
                return
            fault_extra = out.extra_ns
        latency = LINK_COST_NS[dim] + MULTICAST_LOOKUP_NS
        if first_link:
            latency += self.payload_extra
        else:
            latency += THROUGH_RING_NS[dim]
        latency += fault_extra
        latency += net._jitter(packet)
        net.sim.schedule(latency, self._visit, nxt, False)

    def _lost_branch(self, root: NodeCoord) -> None:
        """Drop escalation on one multicast branch: every delivery in
        the unreached subtree is accounted as lost; the packet still
        completes once every other branch lands."""
        net = self.net
        lost = 0
        frontier = [root]
        while frontier:
            node = frontier.pop()
            entry = self.pattern.entries[node]
            lost += len(entry.local_clients)
            for dim, sign in entry.forward:
                frontier.append(net.torus.neighbor(node, dim, sign))
        net.packets_lost += 1
        net.deliveries_lost += lost
        net.faults.record_lost(self.packet, lost)
        self.outstanding -= lost
        if self.outstanding == 0:
            net.packets_completed += 1
            self.done.succeed(net.sim.now)
