"""Torus link model.

Each node connects to its six immediate neighbours via bidirectional
links; each direction of each link is an independent 50.6 Gbit/s
channel with 36.8 Gbit/s effective data bandwidth (§III.A).  A link
direction is modelled as a FCFS :class:`~repro.engine.resource.Resource`
whose occupancy per packet equals the serialization time, giving
bandwidth contention and head-of-line queueing; head latency is charged
separately from the calibrated segment constants (virtual cut-through;
see DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.engine.resource import Resource
from repro.topology.torus import NodeCoord

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.simulator import Simulator


@dataclass(frozen=True)
class LinkId:
    """Identifies one direction of one torus link.

    ``node`` is the node *injecting* into the link; ``dim``/``sign``
    give the direction of travel.  The opposite direction of the same
    physical cable is a distinct :class:`LinkId` (full duplex).
    """

    node: NodeCoord
    dim: str
    sign: int

    @property
    def direction(self) -> str:
        """The ``z+``-style direction tag (dimension and sign)."""
        return f"{self.dim}{'+' if self.sign > 0 else '-'}"

    def __repr__(self) -> str:
        return f"link({self.node}->{self.direction})"


class TorusLink:
    """One direction of one inter-node torus link."""

    def __init__(self, sim: "Simulator", link_id: LinkId) -> None:
        self.sim = sim
        self.link_id = link_id
        self.channel = Resource(sim, capacity=1, name=repr(link_id))
        self.packets_carried = 0
        self.bytes_carried = 0
        #: Link-level retransmissions charged to this direction by the
        #: fault-injection session (always 0 on a fault-free run).
        self.retransmissions = 0

    @property
    def direction(self) -> str:
        """The ``z+``-style direction tag of this link direction."""
        return self.link_id.direction

    def record(self, wire_bytes: int) -> None:
        """Account one packet's traffic on this link direction."""
        self.packets_carried += 1
        self.bytes_carried += wire_bytes

    @property
    def peak_queue_length(self) -> int:
        """Deepest head-of-line queue ever observed on this direction."""
        return self.channel.peak_queue_length

    @property
    def queue_length(self) -> int:
        """Packets currently waiting for this direction (instantaneous
        depth probe for the continuous-monitoring sampler)."""
        return self.channel.queue_length

    @property
    def busy_ns(self) -> float:
        """Cumulative time this direction has been streaming bits,
        including any currently open busy interval.

        Monotonically non-decreasing, so the sampler can snapshot it
        into a ring-buffer series and derive per-window busy fractions
        from consecutive deltas.
        """
        busy = self.channel.total_busy_ns
        since = self.channel._busy_since
        if since is not None:
            busy += self.sim.now - since
        return busy

    def utilization(self, elapsed_ns: float | None = None) -> float:
        """Fraction of time the channel was streaming bits.

        Returns 0.0 for a zero-length window (``elapsed_ns == 0`` or a
        query at simulated time 0) instead of dividing by zero.
        """
        if elapsed_ns is not None and elapsed_ns <= 0:
            return 0.0
        return self.channel.utilization(elapsed_ns)
