"""Multicast pattern tables and the pattern compiler (§III.A).

Anton's network can send a single packet to an arbitrary set of local
or remote destination clients.  When a multicast packet is injected or
arrives at a node, a table lookup determines the local clients and the
outgoing links to which the packet is forwarded; up to 256 precomputed
patterns can be programmed per node.

The compiler below builds **dimension-ordered spanning trees**: the
packet travels along the X axis (both directions as needed), drops Y
branches at columns containing destinations, and the Y branches drop Z
branches.  This yields minimal hop counts on a torus and exactly one
inbound edge per tree node, so the per-node table entry is a simple
(local clients, outgoing directions) pair.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.topology.torus import NodeCoord, Torus3D

DIM_ORDER = ("x", "y", "z")


@dataclass
class TableEntry:
    """Per-node multicast table entry: deliveries and forwards."""

    local_clients: tuple[str, ...] = ()
    forward: tuple[tuple[str, int], ...] = ()  # (dim, sign) pairs


@dataclass
class MulticastPattern:
    """A compiled multicast pattern.

    Attributes
    ----------
    source:
        The injection node the tree was compiled for.  Patterns are
        source-specific (each sender programs its own pattern slot).
    entries:
        Mapping from every node the tree touches to its table entry.
    destinations:
        The original destination map, kept for verification.
    """

    source: NodeCoord
    entries: dict[NodeCoord, TableEntry]
    destinations: dict[NodeCoord, tuple[str, ...]]
    pattern_id: int = -1  # assigned at registration time

    @property
    def nodes_touched(self) -> int:
        return len(self.entries)

    @property
    def total_link_traversals(self) -> int:
        """Number of link crossings one multicast packet makes."""
        return sum(len(e.forward) for e in self.entries.values())

    def reached_clients(self) -> set[tuple[NodeCoord, str]]:
        """All (node, client) pairs the pattern delivers to."""
        out: set[tuple[NodeCoord, str]] = set()
        for node, entry in self.entries.items():
            for client in entry.local_clients:
                out.add((node, client))
        return out

    def links_traversed(self) -> list[tuple[NodeCoord, str, int]]:
        """Every ``(node, dim, sign)`` link direction the tree crosses,
        in deterministic (node-sorted) order — the per-link view the
        congestion attribution joins against."""
        return [
            (node, dim, sign)
            for node in sorted(self.entries)
            for (dim, sign) in self.entries[node].forward
        ]

    def direction_fanout(self) -> dict[str, int]:
        """How many tree edges leave along each ``z+``-style direction
        (a quick fingerprint of where a pattern loads the torus)."""
        fanout: dict[str, int] = {}
        for _node, dim, sign in self.links_traversed():
            tag = f"{dim}{'+' if sign > 0 else '-'}"
            fanout[tag] = fanout.get(tag, 0) + 1
        return fanout


def compile_pattern(
    torus: Torus3D,
    source: "NodeCoord | int",
    destinations: Mapping["NodeCoord | int", Sequence[str]],
) -> MulticastPattern:
    """Compile a dimension-ordered multicast tree.

    Parameters
    ----------
    torus:
        The machine topology.
    source:
        Injecting node.
    destinations:
        Mapping from destination node to the client names on that node
        that should receive the packet.  The source node itself may be
        a destination (local multicast delivery).

    Returns
    -------
    MulticastPattern
        With one table entry per touched node.  The tree is minimal in
        hops per branch (shortest wraparound displacement per
        dimension) and contains no cycles.
    """
    src = torus.coord(source)
    dest_map: dict[NodeCoord, tuple[str, ...]] = {}
    for node, clients in destinations.items():
        coord = torus.coord(node)
        if not clients:
            raise ValueError(f"destination {coord} has an empty client list")
        existing = dest_map.get(coord, ())
        dest_map[coord] = existing + tuple(clients)

    locals_: dict[NodeCoord, list[str]] = defaultdict(list)
    forwards: dict[NodeCoord, set[tuple[str, int]]] = defaultdict(set)

    def build(at: NodeCoord, dests: list[NodeCoord], dims: tuple[str, ...]) -> None:
        if not dims:
            # All remaining destinations must be this very node.
            for d in dests:
                if d != at:  # pragma: no cover - compiler invariant
                    raise AssertionError(f"unroutable destination {d} at {at}")
                locals_[at].extend(dest_map[d])
            return
        dim, rest = dims[0], dims[1:]
        axis = {"x": 0, "y": 1, "z": 2}[dim]
        n = torus.shape[axis]
        groups: dict[int, list[NodeCoord]] = defaultdict(list)
        for d in dests:
            delta = torus._delta(at[axis], d[axis], n)
            groups[delta].append(d)
        if 0 in groups:
            build(at, groups.pop(0), rest)
        for sign in (1, -1):
            offsets = sorted(k * sign for k in groups if k * sign > 0)
            if not offsets:
                continue
            cur = at
            for step in range(1, offsets[-1] + 1):
                forwards[cur].add((dim, sign))
                cur = torus.neighbor(cur, dim, sign)
                if step in offsets:
                    build(cur, groups[step * sign], rest)

    build(src, list(dest_map), DIM_ORDER)

    touched = set(locals_) | set(forwards) | {src}
    entries = {
        node: TableEntry(
            local_clients=tuple(locals_.get(node, ())),
            forward=tuple(sorted(forwards.get(node, set()))),
        )
        for node in touched
    }
    return MulticastPattern(source=src, entries=entries, destinations=dest_map)
