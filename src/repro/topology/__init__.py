"""Machine topology: the inter-node 3-D torus and the intra-node ring.

Anton nodes are identified by Cartesian coordinates in a 3-D torus
(§III.A); each ASIC carries a six-router ring connecting the network
clients (Fig. 1).  :class:`~repro.topology.torus.Torus3D` provides
coordinates, neighbourhoods, and dimension-ordered shortest-path
routing; :class:`~repro.topology.ring.RingLayout` describes the on-chip
client placement that motivates the calibrated per-dimension hop costs.
"""

from repro.topology.ring import RingClient, RingLayout
from repro.topology.torus import NodeCoord, Torus3D

__all__ = ["NodeCoord", "RingClient", "RingLayout", "Torus3D"]
