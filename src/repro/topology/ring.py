"""The intra-node six-router communication ring (Fig. 1).

Each Anton ASIC carries six on-chip routers forming a ring.  Attached
to the ring are the network clients — four processing slices, the HTIS,
two accumulation memories — and the six inter-node link adapters.

The packet-level network model in :mod:`repro.network` does **not**
simulate this ring router-by-router; it charges the calibrated segment
costs of Fig. 6 (see :mod:`repro.constants`).  This module exists to

* document a client placement consistent with the published numbers
  (X-dimension transit traffic crosses more ring routers than Y/Z
  transit traffic, which is why X hops cost 76 ns versus 54 ns), and
* provide ring-hop arithmetic for tests that check the calibration is
  *self-consistent* (e.g. X adapters are farther apart on the ring than
  Y or Z adapters).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

NUM_RING_ROUTERS = 6


class RingClient(str, Enum):
    """Every client attachable to the on-chip ring."""

    SLICE0 = "slice0"
    SLICE1 = "slice1"
    SLICE2 = "slice2"
    SLICE3 = "slice3"
    HTIS = "htis"
    ACCUM0 = "accum0"
    ACCUM1 = "accum1"
    XPLUS = "x+"
    XMINUS = "x-"
    YPLUS = "y+"
    YMINUS = "y-"
    ZPLUS = "z+"
    ZMINUS = "z-"


#: Router index each client attaches to.  Chosen to match Fig. 1's
#: connectivity sketch: the Y and Z adapter pairs sit on adjacent
#: routers (cheap transit), while X+ and X- sit three ring hops apart
#: (expensive transit), consistent with the 76 vs 54 ns hop costs.
DEFAULT_PLACEMENT: dict[RingClient, int] = {
    RingClient.YMINUS: 0,
    RingClient.YPLUS: 0,
    RingClient.SLICE0: 0,
    RingClient.ZMINUS: 1,
    RingClient.ZPLUS: 1,
    RingClient.SLICE1: 1,
    RingClient.XMINUS: 2,
    RingClient.SLICE2: 2,
    RingClient.ACCUM0: 3,
    RingClient.HTIS: 3,
    RingClient.SLICE3: 4,
    RingClient.ACCUM1: 4,
    RingClient.XPLUS: 5,
}


@dataclass(frozen=True)
class RingLayout:
    """Client placement on the six-router ring with hop arithmetic."""

    placement: tuple[tuple[RingClient, int], ...] = tuple(DEFAULT_PLACEMENT.items())

    def router_of(self, client: RingClient) -> int:
        """Router index a client is attached to."""
        for c, r in self.placement:
            if c is client:
                return r
        raise KeyError(client)

    @staticmethod
    def ring_hops(a: int, b: int) -> int:
        """Shortest-path hop count between routers ``a`` and ``b``.

        The ring is bidirectional; maximum distance is 3.
        """
        for r in (a, b):
            if not 0 <= r < NUM_RING_ROUTERS:
                raise ValueError(f"router index {r} out of range")
        d = (b - a) % NUM_RING_ROUTERS
        return min(d, NUM_RING_ROUTERS - d)

    def client_hops(self, a: RingClient, b: RingClient) -> int:
        """Ring hops between two clients' attachment routers."""
        return self.ring_hops(self.router_of(a), self.router_of(b))

    def transit_hops(self, dim: str) -> int:
        """Ring hops crossed by transit traffic continuing in ``dim``.

        Transit traffic enters at one adapter of the dimension and
        leaves at the opposite one (e.g. arrives on X+, departs on X-).
        """
        plus = RingClient(f"{dim}+")
        minus = RingClient(f"{dim}-")
        return self.client_hops(plus, minus)
