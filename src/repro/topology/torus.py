"""Three-dimensional torus topology with dimension-ordered routing.

Anton's inter-node network is a 3-D torus: every node is directly
connected to its six immediate neighbours, and each dimension wraps
around (§II, Fig. 1).  Packets are routed along the shortest path in
each torus dimension, dimension by dimension (X, then Y, then Z) —
"shortest-path routing is used along each torus dimension" (Fig. 5
caption).  Dimension-ordered routing on a torus with per-dimension
shortest paths is deadlock-free when combined with the virtual-channel
scheme the real hardware uses; our model simply never creates routing
cycles.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator, NamedTuple, Sequence

DIMS = ("x", "y", "z")


class NodeCoord(NamedTuple):
    """Cartesian coordinates of a node within the torus.

    A named tuple: hashing and equality run at C speed, which matters —
    node coordinates key every hot dictionary in the network simulator.
    """

    x: int
    y: int
    z: int

    def __repr__(self) -> str:
        return f"({self.x},{self.y},{self.z})"


class Hop(NamedTuple):
    """One routing step: traverse the link in ``dim`` toward ``sign``."""

    dim: str  # "x" | "y" | "z"
    sign: int  # +1 or -1


class Torus3D:
    """A ``nx × ny × nz`` torus of nodes.

    Nodes are addressed either by :class:`NodeCoord` or by a dense
    integer rank (x-major: ``rank = x + nx*(y + ny*z)``), whichever is
    more convenient at a call site.  All routing helpers accept both.
    """

    def __init__(self, nx: int, ny: int, nz: int) -> None:
        for n, label in ((nx, "nx"), (ny, "ny"), (nz, "nz")):
            if n < 1:
                raise ValueError(f"{label} must be >= 1, got {n}")
        self.shape = (nx, ny, nz)
        self.nx, self.ny, self.nz = nx, ny, nz
        self.num_nodes = nx * ny * nz
        self._neighbor_cache: dict[tuple[NodeCoord, str, int], NodeCoord] = {}
        self._route_cache: dict[tuple[NodeCoord, NodeCoord], list[Hop]] = {}

    # -- addressing -------------------------------------------------------
    def coord(self, node: "NodeCoord | int | tuple[int, int, int]") -> NodeCoord:
        """Normalise ``node`` to a :class:`NodeCoord`.

        Accepts a :class:`NodeCoord`, an ``(x, y, z)`` tuple (wrapped
        into the torus), or a dense integer rank.
        """
        if isinstance(node, NodeCoord):
            return node
        if isinstance(node, tuple):
            if len(node) != 3:
                raise ValueError(f"coordinate tuple must have 3 entries, got {node!r}")
            return self.wrap(NodeCoord(*map(int, node)))
        rank = int(node)
        if not 0 <= rank < self.num_nodes:
            raise ValueError(f"rank {rank} out of range for {self.shape} torus")
        x = rank % self.nx
        y = (rank // self.nx) % self.ny
        z = rank // (self.nx * self.ny)
        return NodeCoord(x, y, z)

    def rank(self, node: "NodeCoord | int") -> int:
        """Dense integer rank of ``node``."""
        if isinstance(node, int):
            if not 0 <= node < self.num_nodes:
                raise ValueError(f"rank {node} out of range for {self.shape} torus")
            return node
        c = self.wrap(node)
        return c.x + self.nx * (c.y + self.ny * c.z)

    def wrap(self, coord: NodeCoord) -> NodeCoord:
        """Wrap arbitrary integer coordinates into the torus."""
        return NodeCoord(coord.x % self.nx, coord.y % self.ny, coord.z % self.nz)

    def nodes(self) -> Iterator[NodeCoord]:
        """Iterate all node coordinates in rank order."""
        for z, y, x in product(range(self.nz), range(self.ny), range(self.nx)):
            yield NodeCoord(x, y, z)

    # -- distances ---------------------------------------------------------
    def _delta(self, a: int, b: int, n: int) -> int:
        """Signed shortest wraparound displacement from a to b modulo n.

        Ties (distance exactly n/2 on an even ring) are broken toward
        the positive direction, deterministically.
        """
        d = (b - a) % n
        if d > n - d:
            d -= n
        # d == n - d (exact half-way on an even ring) routes in the
        # positive direction — a deterministic tie-break.
        return d

    def hop_vector(self, src: "NodeCoord | int", dst: "NodeCoord | int") -> tuple[int, int, int]:
        """Signed per-dimension hop counts along the shortest path."""
        a, b = self.coord(src), self.coord(dst)
        return (
            self._delta(a.x, b.x, self.nx),
            self._delta(a.y, b.y, self.ny),
            self._delta(a.z, b.z, self.nz),
        )

    def hops(self, src: "NodeCoord | int", dst: "NodeCoord | int") -> int:
        """Total network hops between ``src`` and ``dst``."""
        return sum(abs(d) for d in self.hop_vector(src, dst))

    def max_hops(self) -> int:
        """Diameter of the torus (maximum hops between any node pair).

        For an 8×8×8 machine this is 12, matching Fig. 5's caption.
        """
        return self.nx // 2 + self.ny // 2 + self.nz // 2

    # -- routing -----------------------------------------------------------
    def route(self, src: "NodeCoord | int", dst: "NodeCoord | int") -> list[Hop]:
        """Dimension-ordered (X, then Y, then Z) shortest-path route.

        Routes are cached: fixed communication patterns reuse the same
        pairs every step.
        """
        a, b = self.coord(src), self.coord(dst)
        cached = self._route_cache.get((a, b))
        if cached is not None:
            return cached
        dx, dy, dz = self.hop_vector(a, b)
        hops: list[Hop] = []
        for dim, d in zip(DIMS, (dx, dy, dz)):
            sign = 1 if d > 0 else -1
            hops.extend(Hop(dim, sign) for _ in range(abs(d)))
        self._route_cache[(a, b)] = hops
        return hops

    def path_nodes(self, src: "NodeCoord | int", dst: "NodeCoord | int") -> list[NodeCoord]:
        """All nodes visited (inclusive of both endpoints), in order."""
        cur = self.coord(src)
        out = [cur]
        for hop in self.route(src, dst):
            step = {d: 0 for d in DIMS}
            step[hop.dim] = hop.sign
            cur = self.wrap(
                NodeCoord(cur.x + step["x"], cur.y + step["y"], cur.z + step["z"])
            )
            out.append(cur)
        return out

    def neighbor(self, node: "NodeCoord | int", dim: str, sign: int) -> NodeCoord:
        """The immediate neighbour of ``node`` along ``dim`` / ``sign``
        (cached — this is the network model's hottest lookup)."""
        c = self.coord(node)
        key = (c, dim, sign)
        cached = self._neighbor_cache.get(key)
        if cached is not None:
            return cached
        if dim not in DIMS:
            raise ValueError(f"unknown dimension {dim!r}")
        if sign not in (1, -1):
            raise ValueError(f"sign must be +1 or -1, got {sign}")
        step = {d: 0 for d in DIMS}
        step[dim] = sign
        n = self.wrap(NodeCoord(c.x + step["x"], c.y + step["y"], c.z + step["z"]))
        self._neighbor_cache[key] = n
        return n

    def face_neighbors(self, node: "NodeCoord | int") -> list[NodeCoord]:
        """The six immediate (face) neighbours, X+,X-,Y+,Y-,Z+,Z-."""
        out = []
        for dim in DIMS:
            for sign in (1, -1):
                out.append(self.neighbor(node, dim, sign))
        return out

    def moore_neighbors(self, node: "NodeCoord | int") -> list[NodeCoord]:
        """All 26 nearest neighbours (used by atom migration, §IV.B.5).

        On small tori some offsets alias to the same node; duplicates
        and the node itself are removed, preserving a deterministic
        order.
        """
        c = self.coord(node)
        seen: dict[NodeCoord, None] = {}
        for dz in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dx in (-1, 0, 1):
                    if dx == dy == dz == 0:
                        continue
                    n = self.wrap(NodeCoord(c.x + dx, c.y + dy, c.z + dz))
                    if n != c:
                        seen.setdefault(n)
        return list(seen)

    def axis_peers(self, node: "NodeCoord | int", dim: str) -> list[NodeCoord]:
        """All other nodes sharing this node's position in the other two
        dimensions — the participants of a one-dimensional all-reduce
        along ``dim`` (§IV.B.4)."""
        c = self.coord(node)
        n = {"x": self.nx, "y": self.ny, "z": self.nz}[dim]
        out = []
        for i in range(n):
            coord = {
                "x": NodeCoord(i, c.y, c.z),
                "y": NodeCoord(c.x, i, c.z),
                "z": NodeCoord(c.x, c.y, i),
            }[dim]
            if coord != c:
                out.append(coord)
        return out

    def __repr__(self) -> str:
        return f"Torus3D({self.nx}x{self.ny}x{self.nz})"
