"""Shared HTML scaffolding for the self-contained report artifacts.

The health report (:mod:`repro.monitor.report`), the observatory
dashboard (:mod:`repro.observatory.report`), the sweep dashboard, and
the congestion X-ray all emit single-file HTML with no external
assets.  The pieces they previously duplicated live here — the
stylesheet (light and dark from one palette via
``prefers-color-scheme``), compact number formatting, stat tiles, the
inline-SVG sparkline, and generic table renderers — so every artifact
looks, aligns, and escapes identically.
"""

from __future__ import annotations

import html
import math
from typing import Iterable, Sequence

#: The shared stylesheet every self-contained HTML artifact embeds.
CSS = """
:root {
  --surface: #fcfcfb; --panel: #f4f4f2; --border: #dededa;
  --ink: #1a1a19; --ink-2: #5d5d5a; --ink-3: #8a8a86;
  --accent: #2b58a8; --grid: #e7e7e3;
  --good: #0ca30c; --warning: #b97e00; --critical: #d03b3b;
}
@media (prefers-color-scheme: dark) {
  :root {
    --surface: #1a1a19; --panel: #242422; --border: #3a3a37;
    --ink: #f0f0ee; --ink-2: #b8b8b4; --ink-3: #8a8a86;
    --accent: #7aa7ee; --grid: #32322f;
    --good: #4fc26b; --warning: #fab219; --critical: #ec835a;
  }
}
* { box-sizing: border-box; }
body {
  margin: 0 auto; padding: 24px; max-width: 1040px;
  background: var(--surface); color: var(--ink);
  font: 14px/1.5 system-ui, -apple-system, "Segoe UI", sans-serif;
}
h1 { font-size: 20px; margin: 0 0 4px; }
h2 { font-size: 15px; margin: 28px 0 8px; }
.subtitle { color: var(--ink-2); margin-bottom: 20px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; }
.tile {
  background: var(--panel); border: 1px solid var(--border);
  border-radius: 8px; padding: 10px 14px; min-width: 128px;
}
.tile .v { font-size: 20px; font-variant-numeric: tabular-nums; }
.tile .k { color: var(--ink-2); font-size: 12px; }
table { border-collapse: collapse; font-variant-numeric: tabular-nums; }
th, td { padding: 4px 10px; text-align: left; border-bottom: 1px solid var(--border); }
th { color: var(--ink-2); font-weight: 600; font-size: 12px; }
td.num, th.num { text-align: right; }
.status-good { color: var(--good); }
.status-warning { color: var(--warning); }
.status-critical { color: var(--critical); }
.verdict-banner {
  display: inline-block; padding: 4px 12px; border-radius: 6px;
  border: 1px solid var(--border); background: var(--panel); font-weight: 600;
}
.heatmap td.cell {
  width: 22px; height: 18px; padding: 0; border: 1px solid var(--surface);
}
.heatmap th { font-weight: 400; color: var(--ink-3); font-size: 11px; padding: 2px 4px; }
.legend { color: var(--ink-2); font-size: 12px; margin-top: 6px; }
.legend .swatch {
  display: inline-block; width: 14px; height: 10px; margin: 0 1px;
}
details { margin: 8px 0 16px; }
summary { color: var(--ink-2); cursor: pointer; font-size: 13px; }
svg text { fill: var(--ink-2); font-size: 11px; }
svg .gridline { stroke: var(--grid); stroke-width: 1; }
svg .axis { stroke: var(--border); stroke-width: 1; }
svg .series { stroke: var(--accent); stroke-width: 2; fill: none; }
.note { color: var(--ink-2); font-size: 13px; }
.spark { vertical-align: middle; }
.spark .series { stroke-width: 1.5; }
.spark .latest { fill: var(--accent); }
"""


def fmt(v: float, digits: int = 1) -> str:
    """Compact number formatting for tables and tiles."""
    if v != v or v in (math.inf, -math.inf):  # NaN / inf guards
        return "-"
    if float(v).is_integer() and abs(v) < 1e15:
        return f"{int(v):,}"
    return f"{v:,.{digits}f}"


def fmt_ns(v: float) -> str:
    if v >= 1e6:
        return f"{v / 1e6:,.2f} ms"
    if v >= 1e3:
        return f"{v / 1e3:,.2f} µs"
    return f"{v:,.0f} ns"


def stat_tiles(stats: Iterable[tuple[str, object]]) -> str:
    """The headline-number tile strip: ``(label, value)`` pairs."""
    tiles = "".join(
        f'<div class="tile"><div class="v">{html.escape(str(v))}</div>'
        f'<div class="k">{html.escape(k)}</div></div>'
        for k, v in stats
    )
    return f'<div class="tiles">{tiles}</div>'


def sparkline(
    name: str,
    values: Sequence[float],
    width: int = 160,
    height: int = 36,
) -> str:
    """A minimal inline-SVG trajectory: the line plus a dot on the
    latest point.  The adjacent table cells carry the numbers, so the
    sparkline needs no axes."""
    if len(values) < 2:
        return '<span class="note">-</span>'
    pad = 4
    v0, v1 = min(values), max(values)
    if v1 == v0:
        v1 = v0 + 1.0
    n = len(values)

    def x(i: int) -> float:
        return pad + i / (n - 1) * (width - 2 * pad)

    def y(v: float) -> float:
        return pad + (1.0 - (v - v0) / (v1 - v0)) * (height - 2 * pad)

    pts = " ".join(f"{x(i):.1f},{y(v):.1f}" for i, v in enumerate(values))
    label = html.escape(f"{name}: {n} points, min {v0:g}, max {v1:g}")
    return (
        f'<svg class="spark" viewBox="0 0 {width} {height}" '
        f'width="{width}" height="{height}" role="img" '
        f'aria-label="{label}">'
        f'<polyline class="series" points="{pts}"/>'
        f'<circle class="latest" cx="{x(n - 1):.1f}" '
        f'cy="{y(values[-1]):.1f}" r="2.5"/>'
        "</svg>"
    )


def html_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    num: Iterable[int] = (),
) -> str:
    """A plain table; column indices in ``num`` are right-aligned.

    Cell values are escaped here, so pass plain strings/numbers.
    """
    numeric = set(num)

    def th(i: int, h: str) -> str:
        cls = ' class="num"' if i in numeric else ""
        return f"<th{cls}>{html.escape(h)}</th>"

    def td(i: int, v: object) -> str:
        cls = ' class="num"' if i in numeric else ""
        return f"<td{cls}>{html.escape(str(v))}</td>"

    head = "".join(th(i, h) for i, h in enumerate(headers))
    body = "".join(
        "<tr>" + "".join(td(i, v) for i, v in enumerate(row)) + "</tr>"
        for row in rows
    )
    return (
        f"<table><thead><tr>{head}</tr></thead>"
        f"<tbody>{body}</tbody></table>"
    )


def details_table(
    summary: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    num: Iterable[int] = (),
) -> str:
    """A collapsed ``<details>`` wrapper around :func:`html_table` (the
    accessible table view behind every chart)."""
    return (
        f"<details><summary>{html.escape(summary)}</summary>"
        + html_table(headers, rows, num)
        + "</details>"
    )


def html_page(
    title: str,
    subtitle: str,
    body: str,
    extra_css: str = "",
) -> str:
    """One self-contained HTML document around pre-rendered ``body``
    (``subtitle`` may carry markup; escape it at the call site)."""
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{html.escape(title)}</title>\n"
        f"<style>{CSS}{extra_css}</style></head><body>\n"
        f"<h1>{html.escape(title)}</h1>\n"
        f'<p class="subtitle">{subtitle}</p>\n'
        + body
        + "</body></html>\n"
    )
