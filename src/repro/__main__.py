"""Command-line entry point: ``python -m repro <command>``.

Quick access to the headline measurements without writing a script:

* ``latency``   — Fig. 5: one-way latency vs hops
* ``breakdown`` — Fig. 6: the 162 ns component breakdown
* ``allreduce`` — Table 2 rows (pass shapes like ``4x4x4``)
* ``survey``    — Table 1 with the simulated Anton row
* ``transfer``  — Fig. 7: the 2 KB message-granularity experiment
* ``trace``     — record a packet flight trace of an experiment and
  export it as Chrome/Perfetto ``trace_event`` JSON (open the file in
  https://ui.perfetto.dev) and optionally JSONL
* ``attribute`` — trace-derived latency attribution: run an experiment
  with the flight recorder on and attribute every nanosecond of the
  critical packet to Fig. 6's component taxonomy, plus per-phase
  critical paths and link contention hotspots
* ``bench``     — run the quick benchmark suite, write ``repro-bench/1``
  JSON results, and optionally fail on regression vs a baseline file
* ``monitor``   — run an experiment with continuous health monitoring
  attached (time-series sampler + invariant watchdogs), print the
  health verdict, and exit nonzero on any invariant violation
* ``report``    — same monitored run, rendered as a self-contained
  HTML health report (utilization heatmap, time-series charts,
  sketch-vs-exact percentiles) plus optional Prometheus text

Every measurement subcommand also takes ``--metrics``, which runs it
with the telemetry layer attached and prints the metrics registry
(counters / gauges / latency percentiles) after the result.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import ExitStack


def _parse_shape(text: str) -> tuple[int, int, int]:
    try:
        x, y, z = (int(p) for p in text.lower().split("x"))
        return (x, y, z)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"shape must look like 8x8x8, got {text!r}"
        ) from None


def _run_trace(args: argparse.Namespace) -> int:
    from repro.trace.capture import run_traced
    from repro.trace.export import flight_summary, write_chrome_trace, write_jsonl

    cap = run_traced(args.experiment, shape=args.shape, rounds=args.rounds)
    write_chrome_trace(args.out, cap.flight, metrics=cap.metrics)
    print(f"captured {args.experiment}: {cap.description}")
    print(f"wrote {args.out} (Chrome trace_event JSON; open in ui.perfetto.dev)")
    if args.jsonl:
        write_jsonl(args.jsonl, cap.flight)
        print(f"wrote {args.jsonl} (JSONL, one record per line)")
    print()
    print(flight_summary(cap.flight, cap.metrics))
    return 0


def _run_attribute(args: argparse.Namespace) -> int:
    from repro.analysis.critical_path import (
        critical_flight,
        link_hotspots,
        phase_reports,
        render_hotspots,
        render_phase_reports,
    )
    from repro.analysis.attribution import (
        attribute_path,
        measure_attribution,
        render_attribution,
    )
    from repro.topology.torus import Torus3D

    if args.experiment == "latency":
        m = measure_attribution(
            hops=args.hops, shape=args.shape, payload_bytes=args.payload
        )
        print(
            f"single counted remote write, {m.hops} hop(s) to "
            f"{m.destination} on {m.shape}, {m.payload_bytes} B payload"
        )
        print()
        print(render_attribution(m.attribution, local_id=0))
        print()
        print(f"simulated end-to-end (send start -> poll done): {m.elapsed_ns:.1f} ns")
        drift = abs(m.attribution.total_ns - m.elapsed_ns)
        print(f"attributed total - simulated end-to-end: {drift:.3f} ns")
        return 0 if drift < 1e-6 else 1

    from repro.trace.capture import run_traced
    from repro.analysis.critical_path import branch_hops

    cap = run_traced(args.experiment, shape=args.shape, rounds=args.rounds)
    torus = Torus3D(*cap.shape)
    print(f"captured {args.experiment}: {cap.description}")
    print()
    reports = phase_reports(cap.flight, torus)
    if reports:
        print(render_phase_reports(reports))
        print()
        for r in reports:
            if r.critical_attribution is not None:
                print(
                    render_attribution(
                        r.critical_attribution,
                        title=f"Critical path of {r.name}",
                        local_id=r.critical_local_id,
                    )
                )
                print()
    else:
        crit = critical_flight(cap.flight, 0.0, float("inf"))
        if crit is not None:
            flight, delivery = crit
            attr = attribute_path(
                flight,
                branch_hops(flight, torus, delivery),
                delivery,
                cap.flight.poll_for(flight, delivery),
            )
            print(
                render_attribution(
                    attr,
                    title="Critical path of the run",
                    local_id=cap.flight.local_ids()[flight.packet_id],
                )
            )
            print()
    print(render_hotspots(link_hotspots(cap.flight, top=args.top)))
    return 0


def _run_bench(args: argparse.Namespace) -> int:
    from repro.bench.compare import compare, render_comparison
    from repro.bench.results import ResultSet
    from repro.bench.suite import run_suite

    only = set(args.only) if args.only else None
    results = run_suite(shape=args.shape, only=only)
    print(f"ran {len(results)} benchmark metrics on {args.shape}")
    if args.out:
        results.write(args.out)
        print(f"wrote {args.out} (schema repro-bench/1)")
    if args.compare is None:
        return 0
    baseline = ResultSet.read(args.compare)
    cmp = compare(baseline, results, threshold=args.threshold)
    print()
    print(render_comparison(cmp))
    return 0 if cmp.ok else 1


def _run_monitor(args: argparse.Namespace) -> int:
    from repro.monitor.capture import run_monitored

    cap = run_monitored(
        args.experiment,
        shape=args.shape,
        rounds=args.rounds,
        interval_ns=args.interval,
        series_capacity=args.capacity,
        stall_ns=args.stall,
    )
    print(f"monitored {args.experiment}: {cap.description}")
    if len(cap.monitors) > 1:
        print(
            f"({len(cap.monitors)} machines monitored; verdict below is "
            "the busiest — any machine's violation fails the run)"
        )
    print()
    print(cap.verdict.render_text())
    if args.jsonl:
        cap.write_jsonl(args.jsonl)
        print(f"\nwrote {args.jsonl} (diagnostics, one JSON record per line)")
    if args.command == "report" or args.html:
        out = args.html or "report.html"
        with open(out, "w") as fh:
            fh.write(cap.html(
                title=f"Continuous health report: {args.experiment}"
            ))
        print(f"wrote {out} (self-contained HTML health report)")
    if args.prom:
        with open(args.prom, "w") as fh:
            fh.write(cap.prometheus())
        print(f"wrote {args.prom} (Prometheus text exposition)")
    if not cap.healthy:
        print("\nHEALTH CHECK FAILED: at least one invariant was violated")
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of the Anton SC10 communication paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared by every measurement subcommand: run with telemetry on and
    # print the metrics registry afterwards.
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--metrics", action="store_true",
        help="attach the telemetry layer and print metrics after the run",
    )

    p_lat = sub.add_parser("latency", parents=[common],
                           help="Fig. 5: latency vs hops")
    p_lat.add_argument("--shape", type=_parse_shape, default=(8, 8, 8))

    sub.add_parser("breakdown", parents=[common],
                   help="Fig. 6: the 162 ns breakdown")
    sub.add_parser("survey", parents=[common],
                   help="Table 1 with the simulated Anton row")
    sub.add_parser("transfer", parents=[common],
                   help="Fig. 7: 2 KB in 1-64 messages")

    p_ar = sub.add_parser("allreduce", parents=[common],
                          help="Table 2 all-reduce rows")
    p_ar.add_argument(
        "shapes", nargs="*", type=_parse_shape, default=[(4, 4, 4), (8, 8, 8)]
    )

    from repro.trace.capture import EXPERIMENTS

    p_tr = sub.add_parser(
        "trace",
        help="record a packet flight trace and export it for Perfetto",
    )
    p_tr.add_argument("experiment", choices=EXPERIMENTS)
    p_tr.add_argument("--shape", type=_parse_shape, default=(4, 4, 4))
    p_tr.add_argument("--rounds", type=int, default=2,
                      help="repetitions inside the experiment (default 2)")
    p_tr.add_argument("--out", default="trace.json",
                      help="Chrome trace_event JSON output path")
    p_tr.add_argument("--jsonl", default=None,
                      help="also write a JSONL dump to this path")

    p_at = sub.add_parser(
        "attribute",
        help="trace-derived latency attribution (Fig. 6 from recorded spans)",
    )
    p_at.add_argument("experiment", choices=EXPERIMENTS)
    p_at.add_argument("--hops", type=int, default=1,
                      help="network hops for the latency experiment")
    p_at.add_argument("--shape", type=_parse_shape, default=(8, 8, 8))
    p_at.add_argument("--payload", type=int, default=0,
                      help="payload bytes for the latency experiment")
    p_at.add_argument("--rounds", type=int, default=2,
                      help="repetitions inside non-latency experiments")
    p_at.add_argument("--top", type=int, default=10,
                      help="link hotspots to show (default 10)")

    from repro.bench.suite import SUITE_BENCHMARKS

    p_be = sub.add_parser(
        "bench",
        help="run the quick benchmark suite; optionally gate on a baseline",
    )
    p_be.add_argument("--shape", type=_parse_shape, default=(4, 4, 4))
    p_be.add_argument("--out", default=None,
                      help="write repro-bench/1 JSON results to this path")
    p_be.add_argument("--compare", default=None, metavar="BASELINE",
                      help="baseline results JSON; exit 1 on regression")
    p_be.add_argument("--threshold", type=float, default=0.05,
                      help="max tolerated fractional worsening (default 0.05)")
    p_be.add_argument("--only", nargs="*", choices=SUITE_BENCHMARKS,
                      default=None, help="restrict to these benchmarks")

    from repro.monitor.capture import (
        DEFAULT_HISTOGRAM_CAP,
        MONITOR_EXPERIMENTS,
    )
    from repro.monitor.health import DEFAULT_STALL_NS
    from repro.monitor.sampler import DEFAULT_INTERVAL_NS

    mon_common = argparse.ArgumentParser(add_help=False)
    mon_common.add_argument(
        "experiment", nargs="?", choices=MONITOR_EXPERIMENTS, default="mdstep"
    )
    mon_common.add_argument("--shape", type=_parse_shape, default=(4, 4, 4))
    mon_common.add_argument("--rounds", type=int, default=2,
                            help="repetitions inside the experiment (default 2)")
    mon_common.add_argument(
        "--interval", type=float, default=DEFAULT_INTERVAL_NS,
        help=f"sampling interval in simulated ns (default {DEFAULT_INTERVAL_NS:.0f})",
    )
    mon_common.add_argument(
        "--capacity", type=int, default=512,
        help="ring-buffer capacity per time series (default 512)",
    )
    mon_common.add_argument(
        "--stall", type=float, default=DEFAULT_STALL_NS,
        help="stall-detector no-progress window in simulated ns "
             f"(default {DEFAULT_STALL_NS:.0f})",
    )
    mon_common.add_argument("--jsonl", default=None,
                            help="write JSONL diagnostics to this path")
    mon_common.add_argument("--prom", default=None,
                            help="write Prometheus text exposition to this path")

    p_mon = sub.add_parser(
        "monitor", parents=[mon_common],
        help="run with continuous health monitoring; exit 1 on violation",
        description="Histograms created during the run are capped at "
                    f"{DEFAULT_HISTOGRAM_CAP} samples and fall back to "
                    "streaming sketches (1% relative error).",
    )
    p_mon.add_argument("--html", default=None,
                       help="also write the HTML health report to this path")

    p_rep = sub.add_parser(
        "report", parents=[mon_common],
        help="monitored run rendered as a self-contained HTML report",
    )
    p_rep.add_argument("--html", default="report.html", metavar="OUT",
                       help="HTML output path (default report.html)")

    args = parser.parse_args(argv)

    if args.command == "trace":
        return _run_trace(args)
    if args.command == "attribute":
        return _run_attribute(args)
    if args.command == "bench":
        return _run_bench(args)
    if args.command in ("monitor", "report"):
        return _run_monitor(args)

    registry = None
    stack = ExitStack()
    if getattr(args, "metrics", False):
        from repro.trace.flight import FlightRecorder, use_flight
        from repro.trace.metrics import MetricsRegistry, use_registry

        registry = MetricsRegistry()
        stack.enter_context(use_registry(registry))
        stack.enter_context(use_flight(FlightRecorder(metrics=registry)))

    with stack:
        if args.command == "latency":
            from repro.analysis import latency_vs_hops, render_series

            pts = latency_vs_hops(shape=args.shape)
            print(render_series(
                f"One-way latency (ns) vs hops on {args.shape}",
                "hops", [p.hops for p in pts],
                {
                    "0B": [p.uni_0b for p in pts],
                    "256B": [p.uni_256b for p in pts],
                },
            ))
        elif args.command == "breakdown":
            from repro.analysis import breakdown_162ns, render_table

            parts = breakdown_162ns()
            rows = [[label, ns] for label, ns in parts]
            rows.append(["TOTAL", sum(ns for _, ns in parts)])
            print(render_table("The 162 ns write, by component", ["part", "ns"], rows))
        elif args.command == "survey":
            from repro.analysis import ping_pong_ns
            from repro.baselines.survey import survey_table

            measured = ping_pong_ns((8, 8, 8), (1, 0, 0)) / 1000.0
            print(survey_table(measured_anton_us=measured))
        elif args.command == "transfer":
            from repro.analysis import render_series, transfer_split_series

            pts = transfer_split_series()
            print(render_series(
                "2 KB transfer time (µs) vs messages",
                "messages", [p.num_messages for p in pts],
                {
                    "InfiniBand": [p.infiniband_ns / 1000 for p in pts],
                    "Anton 1 hop": [p.anton_1hop_ns / 1000 for p in pts],
                },
                float_format="{:.2f}",
            ))
        elif args.command == "allreduce":
            from repro.analysis import measure_allreduce, render_table

            rows = []
            for shape in args.shapes:
                p = measure_allreduce(shape)
                rows.append([f"{p.nodes} ({shape[0]}x{shape[1]}x{shape[2]})",
                             p.reduce0_us, p.reduce32_us])
            print(render_table(
                "Global all-reduce (µs)", ["nodes", "0B", "32B"], rows
            ))

    if registry is not None:
        print()
        print(registry.summary())
    return 0


if __name__ == "__main__":
    sys.exit(main())
