"""Command-line entry point: ``python -m repro <command>``.

Quick access to the headline measurements without writing a script:

* ``latency``   — Fig. 5: one-way latency vs hops
* ``breakdown`` — Fig. 6: the 162 ns component breakdown
* ``allreduce`` — Table 2 rows (pass shapes like ``4x4x4``)
* ``survey``    — Table 1 with the simulated Anton row
* ``transfer``  — Fig. 7: the 2 KB message-granularity experiment
"""

from __future__ import annotations

import argparse
import sys


def _parse_shape(text: str) -> tuple[int, int, int]:
    try:
        x, y, z = (int(p) for p in text.lower().split("x"))
        return (x, y, z)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"shape must look like 8x8x8, got {text!r}"
        ) from None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of the Anton SC10 communication paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_lat = sub.add_parser("latency", help="Fig. 5: latency vs hops")
    p_lat.add_argument("--shape", type=_parse_shape, default=(8, 8, 8))

    sub.add_parser("breakdown", help="Fig. 6: the 162 ns breakdown")
    sub.add_parser("survey", help="Table 1 with the simulated Anton row")
    sub.add_parser("transfer", help="Fig. 7: 2 KB in 1-64 messages")

    p_ar = sub.add_parser("allreduce", help="Table 2 all-reduce rows")
    p_ar.add_argument(
        "shapes", nargs="*", type=_parse_shape, default=[(4, 4, 4), (8, 8, 8)]
    )

    args = parser.parse_args(argv)

    if args.command == "latency":
        from repro.analysis import latency_vs_hops, render_series

        pts = latency_vs_hops(shape=args.shape)
        print(render_series(
            f"One-way latency (ns) vs hops on {args.shape}",
            "hops", [p.hops for p in pts],
            {
                "0B": [p.uni_0b for p in pts],
                "256B": [p.uni_256b for p in pts],
            },
        ))
    elif args.command == "breakdown":
        from repro.analysis import breakdown_162ns, render_table

        parts = breakdown_162ns()
        rows = [[label, ns] for label, ns in parts]
        rows.append(["TOTAL", sum(ns for _, ns in parts)])
        print(render_table("The 162 ns write, by component", ["part", "ns"], rows))
    elif args.command == "survey":
        from repro.analysis import ping_pong_ns
        from repro.baselines.survey import survey_table

        measured = ping_pong_ns((8, 8, 8), (1, 0, 0)) / 1000.0
        print(survey_table(measured_anton_us=measured))
    elif args.command == "transfer":
        from repro.analysis import render_series, transfer_split_series

        pts = transfer_split_series()
        print(render_series(
            "2 KB transfer time (µs) vs messages",
            "messages", [p.num_messages for p in pts],
            {
                "InfiniBand": [p.infiniband_ns / 1000 for p in pts],
                "Anton 1 hop": [p.anton_1hop_ns / 1000 for p in pts],
            },
            float_format="{:.2f}",
        ))
    elif args.command == "allreduce":
        from repro.analysis import measure_allreduce, render_table

        rows = []
        for shape in args.shapes:
            p = measure_allreduce(shape)
            rows.append([f"{p.nodes} ({shape[0]}x{shape[1]}x{shape[2]})",
                         p.reduce0_us, p.reduce32_us])
        print(render_table(
            "Global all-reduce (µs)", ["nodes", "0B", "32B"], rows
        ))
    return 0


if __name__ == "__main__":
    sys.exit(main())
