"""Command-line entry point: ``python -m repro <command>``.

Quick access to the headline measurements without writing a script:

* ``latency``   — Fig. 5: one-way latency vs hops (a sweep pipeline:
  one grid point per hop count, parallelizable with ``--jobs``)
* ``breakdown`` — Fig. 6: the 162 ns component breakdown
* ``allreduce`` — Table 2 rows (a sweep pipeline over machine shapes)
* ``survey``    — Table 1 with the simulated Anton row
* ``transfer``  — Fig. 7: the 2 KB message-granularity experiment
* ``sweep``     — run any registered experiment over a parameter grid
  (``--grid hops=1,2,4,8 --grid shape=4x4x4,8x8x8``) across a process
  pool, backed by a content-addressed result cache: re-running an
  unchanged point is a cache hit, corrupted entries are detected and
  recomputed, and a partially completed sweep resumes with ``--resume``
* ``trace``     — record a packet flight trace of an experiment and
  export it as Chrome/Perfetto ``trace_event`` JSON (open the file in
  https://ui.perfetto.dev) and optionally JSONL
* ``profile``   — profile the *simulator itself* while it runs an
  experiment: wall time and event counts per event type, component,
  and simulation phase, exported as a speedscope / collapsed-stack
  flamegraph or JSON (the vectorization work's measuring stick)
* ``attribute`` — trace-derived latency attribution: run an experiment
  with the flight recorder on and attribute every nanosecond of the
  critical packet to Fig. 6's component taxonomy, plus per-phase
  critical paths and link contention hotspots
* ``bench``     — run the quick benchmark suite, write ``repro-bench/1``
  JSON results, and optionally fail on regression vs a baseline file
* ``monitor``   — run an experiment with continuous health monitoring
  attached (time-series sampler + invariant watchdogs), print the
  health verdict, and exit nonzero on any invariant violation
* ``report``    — same monitored run, rendered as a self-contained
  HTML health report (utilization heatmap, time-series charts,
  sketch-vs-exact percentiles) plus optional Prometheus text
* ``obs``       — the performance observatory over the run ledger that
  ``bench``/``profile``/``sweep`` append to: inspect or extend the
  ledger (``log``), detect per-metric trend regressions against each
  series' own history (``trends``), attribute the wall-ns delta
  between two profile captures (``diff``), and render the HTML
  dashboard / Prometheus exposition (``report``)

Ledger-producing commands share ``--ledger PATH`` / ``--no-ledger``;
the ambient default is ``.repro-ledger.jsonl`` (``$REPRO_LEDGER``
overrides the path, and setting it to ``0``/``off``/empty disables
appending entirely).  Ledger appends are strictly additive
observability: run results and sweep artifacts are byte-identical
with the ledger on or off.

Every measurement subcommand shares the same canonical flags —
``--shape``, ``--rounds``, ``--payload``, ``--seed`` — built from one
argparse parent parser (old spellings survive as hidden deprecated
aliases that print a one-line warning), plus ``--metrics``, which runs
it with the telemetry layer attached and prints the metrics registry
(counters / gauges / latency percentiles) after the result.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import ExitStack


def _parse_shape(text: str) -> tuple[int, int, int]:
    try:
        x, y, z = (int(p) for p in text.lower().split("x"))
        return (x, y, z)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"shape must look like 8x8x8, got {text!r}"
        ) from None


class _DeprecatedAlias(argparse.Action):
    """Accept an old spelling, emit a removal notice, store normally.

    The old spellings (``--payload-bytes``, positional all-reduce
    shapes) parse identically to their canonical replacements
    (``--payload``, ``--shape``) but are on a removal timeline: each
    use raises a :class:`DeprecationWarning` naming the replacement
    (so test suites and ``-W error`` runs catch stragglers) and prints
    the same notice to stderr (DeprecationWarnings are hidden by
    default outside ``__main__``, and CLI users must still see it).
    """

    def __init__(self, option_strings, dest, replacement="", **kwargs):
        kwargs.setdefault("help", argparse.SUPPRESS)
        super().__init__(option_strings, dest, **kwargs)
        self._replacement = replacement

    def __call__(self, parser, namespace, values, option_string=None):
        if values in (None, []):
            return
        import warnings

        name = option_string or self.metavar or self.dest
        msg = f"{name} is deprecated and will be removed in a future release"
        if self._replacement:
            msg += f"; use {self._replacement} instead"
        warnings.warn(msg, DeprecationWarning, stacklevel=2)
        print(f"warning: {msg}", file=sys.stderr)
        setattr(namespace, self.dest, values)


def _canonical_parent(
    shape: tuple[int, int, int] = (4, 4, 4),
    rounds: int = 2,
    with_shape: bool = True,
) -> argparse.ArgumentParser:
    """The shared parent parser: every measurement subcommand takes the
    same ``--shape --rounds --payload --seed`` spellings (plus
    ``--metrics``), so flags learned on one command work on all."""
    p = argparse.ArgumentParser(add_help=False)
    if with_shape:
        p.add_argument(
            "--shape", type=_parse_shape, default=shape,
            help=f"torus shape, e.g. 8x8x8 (default "
                 f"{shape[0]}x{shape[1]}x{shape[2]})",
        )
    p.add_argument("--rounds", type=int, default=rounds,
                   help=f"repetitions inside the experiment (default {rounds})")
    p.add_argument("--payload", type=int, default=0,
                   help="payload bytes where applicable (default 0)")
    # Old spelling kept as a hidden deprecated alias.
    p.add_argument("--payload-bytes", dest="payload", type=int,
                   action=_DeprecatedAlias, replacement="--payload")
    p.add_argument("--seed", type=int, default=0,
                   help="base RNG seed mixed into every run (default 0)")
    p.add_argument(
        "--metrics", action="store_true",
        help="attach the telemetry layer and print metrics after the run",
    )
    return p


def _sweep_exec_parent(default_cache: bool) -> argparse.ArgumentParser:
    """Execution flags shared by the sweep-driven commands."""
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument("--jobs", type=int, default=1,
                   help="parallel worker processes (default 1 = serial; "
                        "results are bit-identical either way)")
    if default_cache:
        p.add_argument("--no-cache", action="store_true",
                       help="disable the content-addressed result cache")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="result cache directory (default .repro-cache, "
                        "or $REPRO_CACHE_DIR)" if default_cache else
                        "enable the result cache rooted at DIR")
    p.add_argument("--out", default=None, metavar="DIR",
                   help="write results.json + per-point checkpoints here")
    p.add_argument("--resume", default=None, metavar="DIR",
                   help="resume a partially completed sweep from DIR "
                        "(implies --out DIR)")
    p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                   help="kill any grid point running longer than SECONDS "
                        "wall-clock and mark it failed (default: no limit)")
    p.add_argument("--retries", type=int, default=0, metavar="N",
                   help="retry a failed grid point up to N times with "
                        "exponential backoff (default 0 = no retries)")
    return p


def _ledger_parent() -> argparse.ArgumentParser:
    """Ledger flags shared by every measuring subcommand."""
    p = argparse.ArgumentParser(add_help=False)
    p.add_argument("--ledger", default=None, metavar="PATH",
                   help="append this run to the observatory ledger at "
                        "PATH (default .repro-ledger.jsonl, or "
                        "$REPRO_LEDGER)")
    p.add_argument("--no-ledger", action="store_true",
                   help="do not append this run to the observatory ledger")
    return p


def _open_ledger(args):
    """The ledger this invocation should append to, or ``None``."""
    if getattr(args, "no_ledger", False):
        return None
    from repro.observatory.ledger import Ledger, default_ledger_path

    path = getattr(args, "ledger", None) or default_ledger_path()
    return Ledger(path) if path else None


def _ledger_append(builder, *args, **kwargs):
    """Run one ledger record builder, best-effort: a broken ledger
    warns on stderr but never fails the measurement that produced the
    data."""
    try:
        return builder(*args, **kwargs)
    except OSError as exc:
        print(f"warning: ledger append failed ({exc}); "
              "results are unaffected", file=sys.stderr)
        return None


def _make_cache(args, default_on: bool):
    from repro.runner import ResultCache
    from repro.runner.cache import default_cache_dir

    if getattr(args, "no_cache", False):
        return None
    if args.cache_dir:
        return ResultCache(args.cache_dir)
    return ResultCache(default_cache_dir()) if default_on else None


def _effective_jobs(args) -> int:
    """``--metrics`` accumulates every run into one shared registry,
    which only a serial, in-process sweep can do."""
    if getattr(args, "metrics", False) and args.jobs > 1:
        print("note: --metrics needs in-process runs; forcing --jobs 1",
              file=sys.stderr)
        return 1
    return args.jobs


# ---------------------------------------------------------------------------
# Sweep-driven commands
# ---------------------------------------------------------------------------

def _run_sweep_cmd(args, registry) -> int:
    from repro.profile.telemetry import SweepTelemetry
    from repro.runner import expand_grid, parse_grid, run_sweep
    from repro.trace.metrics import MetricsRegistry

    try:
        axes = parse_grid(args.grid or [])
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    shape = args.shape
    if shape is None:
        # Latency experiments default to the paper's 512-node machine
        # so the full Fig. 5 hop range is reachable.
        shape = (8, 8, 8) if args.experiment in ("latency", "fig5") else (4, 4, 4)
    base = {
        "shape": shape,
        "rounds": args.rounds,
        "payload": args.payload,
        "seed": args.seed,
    }
    try:
        specs = expand_grid(args.experiment, axes, base)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    cache = _make_cache(args, default_on=True)
    out_dir = args.resume or args.out
    jobs = _effective_jobs(args)
    total = len(specs)
    done = {"n": 0}

    telemetry = SweepTelemetry(
        total=total,
        registry=registry if registry is not None else MetricsRegistry(),
        out_dir=out_dir,
    )
    live = not getattr(args, "quiet", False)

    def on_event(event):
        if not live:
            return
        kind = event["kind"]
        if kind == "started":
            print(f"  [pid {event.get('pid')}] started #{event['index']} "
                  f"{event.get('spec', '')}")
        elif kind == "timed_out":
            print(f"  [pid {event.get('pid')}] TIMED OUT #{event['index']} "
                  f"after {event.get('timeout_s'):g}s")
        elif kind == "retried":
            print(f"  retrying #{event['index']} "
                  f"(attempt {event.get('attempt')})")

    telemetry.on_event = on_event

    def progress(point):
        done["n"] += 1
        line = f"[{done['n']}/{total}] {point.status:>8}  {point.spec.label()}"
        if point.ok:
            line += f"  ({point.result.elapsed_ns:.1f} ns)"
        else:
            line += f"  {point.error}"
        print(line)
        if live:
            print(f"  {telemetry.progress_line()}")

    ledger = _open_ledger(args)
    report = run_sweep(
        specs,
        jobs=jobs,
        cache=cache,
        out_dir=out_dir,
        resume=args.resume is not None,
        registry=registry,
        run_registry=registry,
        progress=progress,
        timeout_s=args.timeout,
        retries=args.retries,
        telemetry=telemetry,
        ledger=ledger,
    )
    print()
    print(report.verdict().render_text())
    parts = [f"{report.computed} computed", f"{report.cache_hits} cached"]
    if report.resumed:
        parts.append(f"{report.resumed} resumed from checkpoint")
    if report.failures:
        parts.append(f"{len(report.failures)} FAILED")
    print(f"\n{total} grid points: " + ", ".join(parts)
          + f" in {report.wall_s:.2f} s wall-clock (jobs={jobs})")
    for line in telemetry.summary_lines():
        print(line)
    if cache is not None:
        s = cache.stats
        print(f"cache {cache.root}: {s.hits} hits, {s.writes} writes, "
              f"{s.corrupt} corrupt entries recomputed")
    if report.ledger_record is not None:
        print(f"ledger: appended record {report.ledger_record.id} "
              f"to {ledger.path}")
    if out_dir:
        print(f"wrote {out_dir}/results.json (repro-bench/1), per-point "
              f"checkpoints under {out_dir}/points/, and live status in "
              f"{out_dir}/status.json")
    if args.prom:
        with open(args.prom, "w") as fh:
            fh.write(telemetry.prometheus())
        print(f"wrote {args.prom} (Prometheus text exposition)")
    if args.html:
        import html as _html

        from repro.monitor.report import CSS

        with open(args.html, "w") as fh:
            fh.write(
                "<!DOCTYPE html>\n"
                '<html lang="en"><head><meta charset="utf-8">\n'
                f"<title>Sweep report: "
                f"{_html.escape(args.experiment)}</title>\n"
                f"<style>{CSS}</style></head><body>\n"
                f"<h1>Sweep report: {_html.escape(args.experiment)}</h1>\n"
                + telemetry.html_section()
                + "</body></html>\n"
            )
        print(f"wrote {args.html} (HTML sweep report)")
    return 0 if report.ok else 1


def _resolve_wall_profile(ledger, target: str) -> tuple[dict, str]:
    """Resolve a ``--diff`` target — an on-disk profile file or a
    ledger record id (prefix) — to ``(wall_profile, label)``."""
    import os

    if os.path.exists(target):
        from repro.profile.export import load_wall_profile

        return load_wall_profile(target), target
    if ledger is not None:
        record = ledger.get(target)
        if record is not None:
            wall = record.attachments.get("wall_profile")
            if not isinstance(wall, dict):
                raise ValueError(
                    f"ledger record {record.id} ({record.kind}) carries "
                    "no wall-profile attachment; diff against a "
                    "'profile' record"
                )
            return wall, f"{record.id} ({record.label})"
    raise ValueError(
        f"{target!r} is neither a profile file nor a "
        "ledger record id"
    )


def _run_profile(args) -> int:
    from repro.profile.capture import run_profiled
    from repro.profile.export import render_table, write_profile

    result = run_profiled(
        args.experiment, shape=args.shape, rounds=args.rounds,
        payload=args.payload, seed=args.seed,
    )
    profiler = result.profile
    assert profiler is not None
    print(f"profiled {args.experiment}: {result.description}")
    print()
    print(render_table(profiler, top=args.top))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            write_profile(
                profiler, fh, fmt=args.format,
                name=f"{args.experiment} {result.spec.label()}",
            )
        hint = {
            "speedscope": "open in https://www.speedscope.app",
            "collapsed": "feed to flamegraph.pl or speedscope",
            "json": "deterministic counts + wall-time profile",
        }[args.format]
        print(f"wrote {args.out} ({args.format}; {hint})")
    ledger = _open_ledger(args)
    if args.diff:
        from repro.observatory.diff import diff_profiles, render_diff

        try:
            base_profile, base_label = _resolve_wall_profile(
                ledger, args.diff
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        diff = diff_profiles(
            base_profile, profiler.wall_profile(),
            base_label=base_label,
            cur_label=f"{args.experiment} (this run)",
        )
        print()
        print(render_diff(diff, top=args.top))
    if ledger is not None:
        from repro.observatory.ledger import log_profile

        record = _ledger_append(log_profile, ledger, result)
        if record is not None:
            print(f"ledger: appended record {record.id} to {ledger.path} "
                  f"(diff a later capture against it with: "
                  f"python -m repro profile {args.experiment} "
                  f"--diff {record.id})")
    return 0


def _run_latency(args, registry) -> int:
    """Fig. 5 rebuilt on the sweep runner: one grid point per hop."""
    from repro.analysis import render_series
    from repro.runner import ExperimentSpec, run_sweep
    from repro.topology.torus import Torus3D

    max_hops = args.max_hops
    if max_hops is None:
        max_hops = Torus3D(*args.shape).max_hops()
    specs = [
        ExperimentSpec(
            "fig5", shape=args.shape, rounds=args.rounds, seed=args.seed,
            hops=h,
        )
        for h in range(0, max_hops + 1)
    ]
    report = run_sweep(
        specs,
        jobs=_effective_jobs(args),
        cache=_make_cache(args, default_on=False),
        out_dir=args.resume or args.out,
        resume=args.resume is not None,
        registry=registry,
        run_registry=registry,
        timeout_s=args.timeout,
        retries=args.retries,
    )
    if not report.ok:
        for p in report.failures:
            print(f"FAILED {p.spec.label()}: {p.error}", file=sys.stderr)
        return 1
    hops = [p.spec.hops for p in report.points]
    curves = {
        "0B": [p.result.value(f"uni_0B_{p.spec.hops}hop_ns")
               for p in report.points],
        "256B": [p.result.value(f"uni_256B_{p.spec.hops}hop_ns")
                 for p in report.points],
        "bi 0B": [p.result.value(f"bi_0B_{p.spec.hops}hop_ns")
                  for p in report.points],
        "bi 256B": [p.result.value(f"bi_256B_{p.spec.hops}hop_ns")
                    for p in report.points],
    }
    print(render_series(
        f"One-way latency (ns) vs hops on {args.shape}", "hops", hops, curves,
    ))
    return 0


def _run_allreduce(args, registry) -> int:
    """Table 2 rebuilt on the sweep runner: one grid point per
    (shape, payload) pair."""
    from repro.analysis import render_table
    from repro.runner import ExperimentSpec, run_sweep

    shapes = args.shape_list or args.shapes or [(4, 4, 4), (8, 8, 8)]
    specs = [
        ExperimentSpec(
            "allreduce", shape=s, rounds=args.rounds, seed=args.seed,
            payload=p,
        )
        for s in shapes
        for p in (0, 32)
    ]
    report = run_sweep(
        specs,
        jobs=_effective_jobs(args),
        cache=_make_cache(args, default_on=False),
        out_dir=args.resume or args.out,
        resume=args.resume is not None,
        registry=registry,
        run_registry=registry,
        timeout_s=args.timeout,
        retries=args.retries,
    )
    if not report.ok:
        for p in report.failures:
            print(f"FAILED {p.spec.label()}: {p.error}", file=sys.stderr)
        return 1
    by_key = {(p.spec.shape, p.spec.payload): p.result for p in report.points}
    rows = []
    for s in shapes:
        nodes = s[0] * s[1] * s[2]
        rows.append([
            f"{nodes} ({s[0]}x{s[1]}x{s[2]})",
            by_key[(s, 0)].elapsed_ns / 1e3,
            by_key[(s, 32)].elapsed_ns / 1e3,
        ])
    print(render_table("Global all-reduce (µs)", ["nodes", "0B", "32B"], rows))
    return 0


# ---------------------------------------------------------------------------
# Trace / attribution / bench / monitor commands
# ---------------------------------------------------------------------------

def _run_trace(args: argparse.Namespace) -> int:
    from repro.trace.capture import run_traced
    from repro.trace.export import flight_summary, write_chrome_trace, write_jsonl

    cap = run_traced(
        args.experiment, shape=args.shape, rounds=args.rounds,
        payload=args.payload, seed=args.seed,
    )
    write_chrome_trace(args.out, cap.flight, metrics=cap.registry)
    print(f"captured {args.experiment}: {cap.description}")
    print(f"wrote {args.out} (Chrome trace_event JSON; open in ui.perfetto.dev)")
    if args.jsonl:
        write_jsonl(args.jsonl, cap.flight)
        print(f"wrote {args.jsonl} (JSONL, one record per line)")
    print()
    print(flight_summary(cap.flight, cap.registry))
    return 0


def _run_attribute(args: argparse.Namespace) -> int:
    from repro.analysis.critical_path import (
        critical_flight,
        link_hotspots,
        phase_reports,
        render_hotspots,
        render_phase_reports,
    )
    from repro.analysis.attribution import (
        attribute_path,
        measure_attribution,
        render_attribution,
    )
    from repro.topology.torus import Torus3D

    stack = ExitStack()
    if args.ber > 0.0:
        from repro.faults.plan import BitError, FaultPlan
        from repro.faults.session import use_fault_plan

        stack.enter_context(use_fault_plan(FaultPlan(
            seed=args.seed,
            bit_errors=(BitError(links="*", ber=args.ber),),
            max_retries=64,
            backoff_max_ns=640.0,
        )))
        print(f"fault injection: uniform ber={args.ber:g} on every link")
        print()

    if args.experiment == "latency":
        with stack:
            m = measure_attribution(
                hops=args.hops, shape=args.shape, payload_bytes=args.payload
            )
        print(
            f"single counted remote write, {m.hops} hop(s) to "
            f"{m.destination} on {m.shape}, {m.payload_bytes} B payload"
        )
        print()
        print(render_attribution(m.attribution, local_id=0))
        print()
        print(f"simulated end-to-end (send start -> poll done): {m.elapsed_ns:.1f} ns")
        drift = abs(m.attribution.total_ns - m.elapsed_ns)
        print(f"attributed total - simulated end-to-end: {drift:.3f} ns")
        return 0 if drift < 1e-6 else 1

    from repro.trace.capture import run_traced
    from repro.analysis.critical_path import branch_hops

    with stack:
        cap = run_traced(
            args.experiment, shape=args.shape, rounds=args.rounds,
            payload=args.payload, seed=args.seed,
        )
    torus = Torus3D(*cap.shape)
    print(f"captured {args.experiment}: {cap.description}")
    print()
    reports = phase_reports(cap.flight, torus)
    if reports:
        print(render_phase_reports(reports))
        print()
        for r in reports:
            if r.critical_attribution is not None:
                print(
                    render_attribution(
                        r.critical_attribution,
                        title=f"Critical path of {r.name}",
                        local_id=r.critical_local_id,
                    )
                )
                print()
    else:
        crit = critical_flight(cap.flight, 0.0, float("inf"))
        if crit is not None:
            flight, delivery = crit
            attr = attribute_path(
                flight,
                branch_hops(flight, torus, delivery),
                delivery,
                cap.flight.poll_for(flight, delivery),
            )
            print(
                render_attribution(
                    attr,
                    title="Critical path of the run",
                    local_id=cap.flight.local_ids()[flight.packet_id],
                )
            )
            print()
    print(render_hotspots(link_hotspots(cap.flight, top=args.top)))
    return 0


def _run_bench(args: argparse.Namespace) -> int:
    from repro.bench.compare import compare, render_comparison, verdict_doc
    from repro.bench.results import ResultSet, canonical_json
    from repro.bench.suite import run_suite

    only = set(args.only) if args.only else None
    results = run_suite(shape=args.shape, only=only, jobs=args.jobs)
    print(f"ran {len(results)} benchmark metrics on {args.shape}")
    if args.out:
        results.write(args.out)
        print(f"wrote {args.out} (schema repro-bench/1)")
    cmp = None
    if args.compare is not None:
        baseline = ResultSet.read(args.compare)
        cmp = compare(baseline, results, threshold=args.threshold)
    verdict = verdict_doc(cmp)
    ledger = _open_ledger(args)
    if ledger is not None:
        from repro.observatory.ledger import log_bench

        shape = args.shape
        record = _ledger_append(
            log_bench, ledger, results,
            label=f"bench {shape[0]}x{shape[1]}x{shape[2]}",
            verdict=verdict if cmp is not None else None,
        )
        if record is not None:
            print(f"ledger: appended record {record.id} to {ledger.path}")
    if cmp is not None:
        print()
        print(render_comparison(cmp))
    if args.json:
        # The machine-readable verdict, one line, last on stdout — the
        # code path CI and the observatory share.
        print(canonical_json(verdict))
    return 0 if cmp is None or cmp.ok else 1


def _run_monitor(args: argparse.Namespace) -> int:
    from repro.monitor.capture import run_monitored

    cap = run_monitored(
        args.experiment,
        shape=args.shape,
        rounds=args.rounds,
        interval_ns=args.interval,
        series_capacity=args.capacity,
        stall_ns=args.stall,
        payload=args.payload,
        seed=args.seed,
    )
    print(f"monitored {args.experiment}: {cap.description}")
    if len(cap.monitors) > 1:
        print(
            f"({len(cap.monitors)} machines monitored; verdict below is "
            "the busiest — any machine's violation fails the run)"
        )
    print()
    print(cap.verdict.render_text())
    if args.jsonl:
        cap.write_jsonl(args.jsonl)
        print(f"\nwrote {args.jsonl} (diagnostics, one JSON record per line)")
    if args.command == "report" or args.html:
        out = args.html or "report.html"
        with open(out, "w") as fh:
            fh.write(cap.html(
                title=f"Continuous health report: {args.experiment}"
            ))
        print(f"wrote {out} (self-contained HTML health report)")
    if args.prom:
        with open(args.prom, "w") as fh:
            fh.write(cap.prometheus())
        print(f"wrote {args.prom} (Prometheus text exposition)")
    if not cap.healthy:
        print("\nHEALTH CHECK FAILED: at least one invariant was violated")
        return 1
    return 0


def _run_congest(args: argparse.Namespace) -> int:
    from repro.bench.results import canonical_json
    from repro.congestion.capture import run_congested
    from repro.congestion.decompose import (
        decompose_run,
        render_decomposition,
    )
    from repro.congestion.report import (
        congestion_doc,
        render_congestion_html,
        render_congestion_prometheus,
        render_congestion_text,
    )
    from repro.congestion.tree import build_congestion_tree
    from repro.topology.torus import Torus3D

    result = run_congested(
        args.experiment,
        shape=args.shape,
        rounds=args.rounds,
        payload=args.payload,
        seed=args.seed,
        hops=args.hops,
        senders=args.senders,
    )
    torus = Torus3D(*args.shape)
    tree = build_congestion_tree(
        result.flight, torus, min_episode_ns=args.min_episode
    )
    print(f"congest {args.experiment}: {result.description}")
    print()
    print(render_congestion_text(tree, top=args.top))
    decomps = decompose_run(result.flight, torus)
    if decomps:
        print()
        print(render_decomposition(
            decomps,
            title=f"Delay decomposition — {len(decomps)} packets, "
                  "exactly tiled per packet",
        ))
    if args.html:
        with open(args.html, "w", encoding="utf-8") as fh:
            fh.write(render_congestion_html(
                tree,
                series=result.congestion.depth_series
                if result.congestion is not None else None,
                experiment=args.experiment,
                shape=args.shape,
            ))
        print(f"wrote {args.html} (self-contained congestion X-ray)")
    if args.prom:
        with open(args.prom, "w", encoding="utf-8") as fh:
            fh.write(render_congestion_prometheus(tree, result.congestion))
        print(f"wrote {args.prom} (Prometheus text exposition)")
    ledger = _open_ledger(args)
    if ledger is not None:
        from repro.observatory.ledger import log_congest

        record = _ledger_append(log_congest, ledger, result, tree)
        if record is not None:
            print(f"ledger: appended record {record.id} to {ledger.path}")
    if args.json:
        # Machine-readable document, one line, last on stdout — the
        # code path the CI congestion smoke parses.
        print(canonical_json(
            congestion_doc(tree, experiment=args.experiment,
                           shape=args.shape, top=args.top)
        ))
    return 0


# ---------------------------------------------------------------------------
# Observatory commands
# ---------------------------------------------------------------------------

def _require_ledger(args):
    ledger = _open_ledger(args)
    if ledger is None:
        print("error: the ledger is disabled ($REPRO_LEDGER); pass "
              "--ledger PATH explicitly", file=sys.stderr)
    return ledger


def _obs_series(args):
    """The metric series for trends/report: from ``--trajectory`` when
    given, else from the ledger.  Returns ``(series_map, source,
    records)`` or ``None`` after printing an error."""
    from repro.observatory.trends import (
        read_trajectory,
        series_from_records,
        series_from_trajectory,
    )

    if getattr(args, "trajectory", None):
        try:
            doc = read_trajectory(args.trajectory)
        except (OSError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return None
        return (
            series_from_trajectory(doc),
            args.trajectory,
            doc.get("points", []),
        )
    ledger = _require_ledger(args)
    if ledger is None:
        return None
    records = ledger.read()
    if ledger.skipped:
        print(f"note: skipped {len(ledger.skipped)} unreadable ledger "
              f"line(s)", file=sys.stderr)
    return series_from_records(records), ledger.path, records


def _obs_log(args) -> int:
    import time as _time

    from repro.observatory.ledger import log_bench

    ledger = _require_ledger(args)
    if ledger is None:
        return 2

    if args.results:
        from repro.bench.results import ResultSet
        from repro.observatory.trends import append_trajectory

        results = ResultSet.read(args.results)
        record = log_bench(ledger, results, label=args.label)
        print(f"appended record {record.id} (seq {record.seq}, "
              f"{len(record.metrics)} metrics) to {ledger.path}")
        if args.trajectory:
            doc = append_trajectory(
                args.trajectory, results,
                provenance=record.provenance,
            )
            print(f"appended trajectory point seq "
                  f"{doc['points'][-1]['seq']} to {args.trajectory}")
        return 0
    if args.trajectory:
        print("error: --trajectory needs --results FILE to append from",
              file=sys.stderr)
        return 2

    if args.verify:
        problems = ledger.verify()
        if problems:
            print(f"{ledger.path}: {len(problems)} problem(s)")
            for problem in problems:
                print(f"  {problem}")
            return 1
        print(f"{ledger.path}: chain intact")
        return 0

    records = ledger.read()
    if not records:
        print(f"{ledger.path}: empty ledger")
        return 0
    tail = records[-args.limit:] if args.limit > 0 else records
    print(f"{ledger.path}: {len(records)} record(s)"
          + (f", showing last {len(tail)}" if len(tail) < len(records)
             else ""))
    print(f"{'seq':>5}  {'id':<12}  {'kind':<8}  {'when':<16}  "
          f"{'metrics':>7}  label")
    for rec in tail:
        when = _time.strftime("%Y-%m-%d %H:%M", _time.localtime(rec.ts))
        print(f"{rec.seq:>5}  {rec.id:<12}  {rec.kind:<8}  {when:<16}  "
              f"{len(rec.metrics):>7}  {rec.label}")
    if ledger.skipped:
        print(f"({len(ledger.skipped)} unreadable line(s) skipped)")
    return 0


def _obs_trends(args) -> int:
    from repro.bench.results import canonical_json
    from repro.observatory.trends import trend_report

    resolved = _obs_series(args)
    if resolved is None:
        return 2
    series_map, source, _records = resolved
    report = trend_report(
        series_map,
        window=args.window,
        min_points=args.min_points,
        min_worsening=args.min_worsening,
        mad_mult=args.mad_mult,
    )
    if args.json:
        print(canonical_json(report.to_doc()))
    else:
        print(f"source: {source}")
        print()
        print(report.render_text())
    return 0 if report.ok else 1


def _obs_diff(args) -> int:
    from repro.bench.results import canonical_json
    from repro.observatory.diff import diff_profiles, render_diff

    ledger = _open_ledger(args)
    try:
        base_profile, base_label = _resolve_wall_profile(ledger, args.base)
        cur_profile, cur_label = _resolve_wall_profile(ledger, args.current)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    diff = diff_profiles(
        base_profile, cur_profile,
        base_label=base_label, cur_label=cur_label,
    )
    if args.json:
        print(canonical_json(diff.to_doc()))
    else:
        print(render_diff(diff, top=args.top))
    if (
        args.max_residual is not None
        and abs(diff.residual_ns) > args.max_residual
    ):
        print(
            f"RESIDUAL GATE FAILED: |{diff.residual_ns:.0f}| ns "
            f"unattributed exceeds --max-residual {args.max_residual:.0f}",
            file=sys.stderr,
        )
        return 1
    return 0


def _obs_report(args) -> int:
    from repro.observatory.report import (
        render_observatory_html,
        render_observatory_prometheus,
    )
    from repro.observatory.trends import trend_report

    resolved = _obs_series(args)
    if resolved is None:
        return 2
    series_map, source, records = resolved
    report = trend_report(series_map, window=args.window)

    diff = None
    if args.diff:
        from repro.observatory.diff import diff_profiles

        ledger = _open_ledger(args)
        try:
            base_profile, base_label = _resolve_wall_profile(
                ledger, args.diff[0]
            )
            cur_profile, cur_label = _resolve_wall_profile(
                ledger, args.diff[1]
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        diff = diff_profiles(
            base_profile, cur_profile,
            base_label=base_label, cur_label=cur_label,
        )

    latest = None
    if records:
        last = records[-1]
        latest = getattr(last, "provenance", None) or (
            last.get("provenance") if isinstance(last, dict) else None
        )
    html = render_observatory_html(
        report,
        records=len(records),
        latest_provenance=latest,
        diff=diff,
        source=source,
    )
    with open(args.html, "w", encoding="utf-8") as fh:
        fh.write(html)
    print(f"wrote {args.html} (observatory dashboard: "
          f"{len(report.verdicts)} metric series, "
          f"{len(report.regressions)} trend regression(s))")
    if args.prom:
        with open(args.prom, "w", encoding="utf-8") as fh:
            fh.write(render_observatory_prometheus(report))
        print(f"wrote {args.prom} (Prometheus text exposition)")
    return 0


def _run_obs(args) -> int:
    return {
        "log": _obs_log,
        "trends": _obs_trends,
        "diff": _obs_diff,
        "report": _obs_report,
    }[args.obs_command](args)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of the Anton SC10 communication paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    from repro.runner.spec import experiment_names

    p_lat = sub.add_parser(
        "latency", parents=[_canonical_parent(shape=(8, 8, 8), rounds=4),
                            _sweep_exec_parent(default_cache=False)],
        help="Fig. 5: latency vs hops (sweep pipeline)",
    )
    p_lat.add_argument("--max-hops", type=int, default=None,
                       help="largest hop count (default: the torus diameter)")

    sub.add_parser("breakdown", parents=[_canonical_parent()],
                   help="Fig. 6: the 162 ns breakdown")
    sub.add_parser("survey", parents=[_canonical_parent(shape=(8, 8, 8))],
                   help="Table 1 with the simulated Anton row")
    sub.add_parser("transfer", parents=[_canonical_parent()],
                   help="Fig. 7: 2 KB in 1-64 messages")

    p_ar = sub.add_parser(
        "allreduce",
        parents=[_canonical_parent(with_shape=False),
                 _sweep_exec_parent(default_cache=False)],
        help="Table 2 all-reduce rows (sweep pipeline)",
    )
    p_ar.add_argument("--shape", dest="shape_list", type=_parse_shape,
                      action="append", default=None, metavar="SHAPE",
                      help="machine shape, repeatable "
                           "(default 4x4x4 and 8x8x8)")
    # Old spelling: positional shapes, kept as a deprecated alias.
    p_ar.add_argument("shapes", nargs="*", type=_parse_shape, default=[],
                      action=_DeprecatedAlias, replacement="--shape",
                      metavar="shapes")

    p_sw = sub.add_parser(
        "sweep",
        parents=[_canonical_parent(with_shape=False),
                 _sweep_exec_parent(default_cache=True),
                 _ledger_parent()],
        help="run any experiment over a parameter grid, parallel + cached",
        description="Execute a grid of independent runs across a process "
                    "pool with a content-addressed result cache: "
                    "re-running an unchanged point is a cache hit, a "
                    "corrupted entry is detected and recomputed, and a "
                    "partially completed sweep resumes with --resume DIR.",
    )
    p_sw.add_argument("experiment", choices=experiment_names())
    p_sw.add_argument("--shape", type=_parse_shape, default=None,
                      help="base torus shape for points the grid doesn't "
                           "override (default 8x8x8 for latency/fig5, "
                           "else 4x4x4)")
    p_sw.add_argument("--grid", action="append", default=[], metavar="KEY=V1,V2",
                      help="sweep axis, repeatable: shape/rounds/payload/"
                           "seed/hops or an experiment-specific extra "
                           "(e.g. --grid hops=1,2,4,8)")
    p_sw.add_argument("--quiet", action="store_true",
                      help="suppress live per-worker telemetry lines")
    p_sw.add_argument("--prom", default=None, metavar="OUT",
                      help="write the sweep.* Prometheus exposition here")
    p_sw.add_argument("--html", default=None, metavar="OUT",
                      help="write an HTML sweep telemetry report here")

    p_pr = sub.add_parser(
        "profile", parents=[_canonical_parent(), _ledger_parent()],
        help="profile the simulator itself while running an experiment",
        description="Run one experiment with the engine self-profiler "
                    "attached: wall time and event counts per event type, "
                    "component, and simulation phase.  Per-component wall "
                    "totals tile the run loop's measured wall time exactly "
                    "(scheduler overhead is its own row, never smeared).",
    )
    p_pr.add_argument("experiment", choices=experiment_names())
    p_pr.add_argument("--out", default=None, metavar="OUT",
                      help="write the profile to this path")
    p_pr.add_argument("--format", choices=("speedscope", "collapsed", "json"),
                      default="speedscope",
                      help="profile file format (default speedscope; open "
                           "in https://www.speedscope.app)")
    p_pr.add_argument("--top", type=int, default=15,
                      help="hottest event types to print (default 15)")
    p_pr.add_argument("--diff", default=None, metavar="BASE",
                      help="differential profile: attribute this run's "
                           "wall-ns delta against BASE — a ledger record "
                           "id (prefix) or an on-disk profile file "
                           "(speedscope or --format json output)")

    from repro.trace.capture import EXPERIMENTS

    p_tr = sub.add_parser(
        "trace", parents=[_canonical_parent()],
        help="record a packet flight trace and export it for Perfetto",
    )
    p_tr.add_argument("experiment", choices=EXPERIMENTS)
    p_tr.add_argument("--out", default="trace.json",
                      help="Chrome trace_event JSON output path")
    p_tr.add_argument("--jsonl", default=None,
                      help="also write a JSONL dump to this path")

    p_at = sub.add_parser(
        "attribute", parents=[_canonical_parent(shape=(8, 8, 8))],
        help="trace-derived latency attribution (Fig. 6 from recorded spans)",
    )
    p_at.add_argument("experiment", choices=EXPERIMENTS)
    p_at.add_argument("--hops", type=int, default=1,
                      help="network hops for the latency experiment")
    p_at.add_argument("--top", type=int, default=10,
                      help="link hotspots to show (default 10)")
    p_at.add_argument("--ber", type=float, default=0.0,
                      help="inject a uniform link bit-error rate and "
                           "attribute the retry time (default 0 = off)")

    from repro.bench.suite import SUITE_BENCHMARKS

    p_be = sub.add_parser(
        "bench", parents=[_canonical_parent(), _ledger_parent()],
        help="run the quick benchmark suite; optionally gate on a baseline",
    )
    p_be.add_argument("--json", action="store_true",
                      help="print the machine-readable compare verdict "
                           "(repro-bench-verdict/1) as the last stdout "
                           "line — the code path CI and the observatory "
                           "share")
    p_be.add_argument("--jobs", type=int, default=1,
                      help="parallel worker processes for suite sweeps")
    p_be.add_argument("--out", default=None,
                      help="write repro-bench/1 JSON results to this path")
    p_be.add_argument("--compare", default=None, metavar="BASELINE",
                      help="baseline results JSON; exit 1 on regression")
    p_be.add_argument("--threshold", type=float, default=0.05,
                      help="max tolerated fractional worsening (default 0.05)")
    p_be.add_argument("--only", nargs="*", choices=SUITE_BENCHMARKS,
                      default=None, help="restrict to these benchmarks")

    from repro.monitor.capture import (
        DEFAULT_HISTOGRAM_CAP,
        MONITOR_EXPERIMENTS,
    )
    from repro.monitor.health import DEFAULT_STALL_NS
    from repro.monitor.sampler import DEFAULT_INTERVAL_NS

    mon_common = argparse.ArgumentParser(
        add_help=False, parents=[_canonical_parent()]
    )
    mon_common.add_argument(
        "experiment", nargs="?", choices=MONITOR_EXPERIMENTS, default="mdstep"
    )
    mon_common.add_argument(
        "--interval", type=float, default=DEFAULT_INTERVAL_NS,
        help=f"sampling interval in simulated ns (default {DEFAULT_INTERVAL_NS:.0f})",
    )
    mon_common.add_argument(
        "--capacity", type=int, default=512,
        help="ring-buffer capacity per time series (default 512)",
    )
    mon_common.add_argument(
        "--stall", type=float, default=DEFAULT_STALL_NS,
        help="stall-detector no-progress window in simulated ns "
             f"(default {DEFAULT_STALL_NS:.0f})",
    )
    mon_common.add_argument("--jsonl", default=None,
                            help="write JSONL diagnostics to this path")
    mon_common.add_argument("--prom", default=None,
                            help="write Prometheus text exposition to this path")

    p_mon = sub.add_parser(
        "monitor", parents=[mon_common],
        help="run with continuous health monitoring; exit 1 on violation",
        description="Histograms created during the run are capped at "
                    f"{DEFAULT_HISTOGRAM_CAP} samples and fall back to "
                    "streaming sketches (1% relative error).",
    )
    p_mon.add_argument("--html", default=None,
                       help="also write the HTML health report to this path")

    p_rep = sub.add_parser(
        "report", parents=[mon_common],
        help="monitored run rendered as a self-contained HTML report",
    )
    p_rep.add_argument("--html", default="report.html", metavar="OUT",
                       help="HTML output path (default report.html)")

    from repro.congestion.capture import EXPERIMENTS as CONGEST_EXPERIMENTS

    p_cg = sub.add_parser(
        "congest", parents=[_canonical_parent(), _ledger_parent()],
        help="the congestion X-ray: queue telemetry, per-packet delay "
             "decomposition, backpressure attribution",
        description="Runs one experiment with the flight recorder and "
                    "the congestion recorder attached, then prints the "
                    "backpressure congestion tree (links ranked by "
                    "contributed head-of-line wait), the worst link's "
                    "feeders, blocking episodes, and the exact "
                    "per-packet delay decomposition.",
    )
    p_cg.add_argument("experiment", choices=CONGEST_EXPERIMENTS)
    p_cg.add_argument("--hops", type=int, default=None,
                      help="network hops for the latency experiment")
    p_cg.add_argument("--senders", type=int, default=None,
                      help="fan-in width for the congestion incast "
                           "(default 8; 26 = full 3x3x3 incast)")
    p_cg.add_argument("--top", type=int, default=10,
                      help="contended links/episodes to list (default 10)")
    p_cg.add_argument("--min-episode", type=float, default=0.0,
                      metavar="NS",
                      help="drop merged blocking episodes shorter than "
                           "NS (default 0 = keep all)")
    p_cg.add_argument("--json", action="store_true",
                      help="print the repro-congest/1 document as the "
                           "last stdout line")
    p_cg.add_argument("--html", default=None, metavar="OUT",
                      help="write the standalone congestion X-ray HTML "
                           "report to this path")
    p_cg.add_argument("--prom", default=None, metavar="OUT",
                      help="write the congestion.* Prometheus text "
                           "exposition to this path")

    from repro.observatory.trends import (
        DEFAULT_MAD_MULT,
        DEFAULT_MIN_POINTS,
        DEFAULT_MIN_WORSENING,
        DEFAULT_WINDOW,
    )

    p_obs = sub.add_parser(
        "obs",
        help="the performance observatory: ledger, trends, profile "
             "diffs, dashboard",
        description="Longitudinal performance tooling over the run "
                    "ledger that bench/profile/sweep append to.",
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)

    o_log = obs_sub.add_parser(
        "log", parents=[_ledger_parent()],
        help="show the ledger tail, verify the hash chain, or append "
             "a repro-bench/1 results file",
    )
    o_log.add_argument("--limit", type=int, default=20,
                       help="records to show (default 20; 0 = all)")
    o_log.add_argument("--verify", action="store_true",
                       help="verify the hash chain and exit 1 on damage")
    o_log.add_argument("--results", default=None, metavar="FILE",
                       help="append a bench record built from this "
                            "repro-bench/1 results file")
    o_log.add_argument("--label", default="bench",
                       help="label for the appended record "
                            "(default 'bench')")
    o_log.add_argument("--trajectory", default=None, metavar="FILE",
                       help="with --results: also append one point to "
                            "this repro-trajectory/1 document")

    trend_common = argparse.ArgumentParser(add_help=False)
    trend_common.add_argument(
        "--trajectory", default=None, metavar="FILE",
        help="read series from this repro-trajectory/1 document "
             "instead of the ledger")
    trend_common.add_argument(
        "--window", type=int, default=DEFAULT_WINDOW,
        help=f"history window per metric (default {DEFAULT_WINDOW})")

    o_tr = obs_sub.add_parser(
        "trends", parents=[_ledger_parent(), trend_common],
        help="robust per-metric regression detection over the ledger "
             "window; exit 1 on any trend regression",
    )
    o_tr.add_argument("--min-points", type=int, default=DEFAULT_MIN_POINTS,
                      help="points required before judging a series "
                           f"(default {DEFAULT_MIN_POINTS})")
    o_tr.add_argument("--min-worsening", type=float,
                      default=DEFAULT_MIN_WORSENING,
                      help="floor on the worsening threshold "
                           f"(default {DEFAULT_MIN_WORSENING})")
    o_tr.add_argument("--mad-mult", type=float, default=DEFAULT_MAD_MULT,
                      help="noise multiplier: threshold grows to this "
                           "many MADs of the series' own spread "
                           f"(default {DEFAULT_MAD_MULT})")
    o_tr.add_argument("--json", action="store_true",
                      help="print the repro-obs-trends/1 verdict as one "
                           "line instead of the table")

    o_df = obs_sub.add_parser(
        "diff", parents=[_ledger_parent()],
        help="attribute the wall-ns delta between two profile captures",
    )
    o_df.add_argument("base", help="baseline: ledger record id (prefix) "
                                   "or profile file")
    o_df.add_argument("current", help="current: ledger record id "
                                      "(prefix) or profile file")
    o_df.add_argument("--top", type=int, default=15,
                      help="largest movers to list (default 15)")
    o_df.add_argument("--json", action="store_true",
                      help="print the repro-profile-diff/1 document "
                           "as one line instead of the table")
    o_df.add_argument("--max-residual", type=float, default=None,
                      metavar="NS",
                      help="exit 1 when the diff's unattributed "
                           "residual exceeds NS in magnitude (gates "
                           "attribution quality in CI)")

    o_rp = obs_sub.add_parser(
        "report", parents=[_ledger_parent(), trend_common],
        help="render the observatory HTML dashboard (+ Prometheus)",
    )
    o_rp.add_argument("--html", default="observatory.html", metavar="OUT",
                      help="HTML output path (default observatory.html)")
    o_rp.add_argument("--prom", default=None, metavar="OUT",
                      help="write the Prometheus exposition here")
    o_rp.add_argument("--diff", nargs=2, default=None,
                      metavar=("BASE", "CURRENT"),
                      help="include a profile-diff flame table for "
                           "these two captures")

    args = parser.parse_args(argv)

    if args.command == "trace":
        return _run_trace(args)
    if args.command == "profile":
        return _run_profile(args)
    if args.command == "attribute":
        return _run_attribute(args)
    if args.command == "bench":
        return _run_bench(args)
    if args.command in ("monitor", "report"):
        return _run_monitor(args)
    if args.command == "congest":
        return _run_congest(args)
    if args.command == "obs":
        return _run_obs(args)

    registry = None
    stack = ExitStack()
    if getattr(args, "metrics", False):
        from repro.trace.flight import FlightRecorder, use_flight
        from repro.trace.metrics import MetricsRegistry, use_registry

        registry = MetricsRegistry()
        stack.enter_context(use_registry(registry))
        stack.enter_context(use_flight(FlightRecorder(metrics=registry)))

    with stack:
        if args.command == "sweep":
            rc = _run_sweep_cmd(args, registry)
        elif args.command == "latency":
            rc = _run_latency(args, registry)
        elif args.command == "allreduce":
            rc = _run_allreduce(args, registry)
        elif args.command == "breakdown":
            from repro.analysis import breakdown_162ns, render_table

            parts = breakdown_162ns()
            rows = [[label, ns] for label, ns in parts]
            rows.append(["TOTAL", sum(ns for _, ns in parts)])
            print(render_table("The 162 ns write, by component", ["part", "ns"], rows))
            rc = 0
        elif args.command == "survey":
            from repro.analysis import ping_pong_ns
            from repro.baselines.survey import survey_table

            measured = ping_pong_ns(args.shape, (1, 0, 0)) / 1000.0
            print(survey_table(measured_anton_us=measured))
            rc = 0
        elif args.command == "transfer":
            from repro.analysis import render_series, transfer_split_series

            pts = transfer_split_series()
            print(render_series(
                "2 KB transfer time (µs) vs messages",
                "messages", [p.num_messages for p in pts],
                {
                    "InfiniBand": [p.infiniband_ns / 1000 for p in pts],
                    "Anton 1 hop": [p.anton_1hop_ns / 1000 for p in pts],
                },
                float_format="{:.2f}",
            ))
            rc = 0
        else:  # pragma: no cover — argparse enforces the choices
            raise AssertionError(args.command)

    if registry is not None:
        print()
        print(registry.summary())
    return rc


if __name__ == "__main__":
    sys.exit(main())
